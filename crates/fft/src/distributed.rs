//! The spatially distributed 3D FFT of paper §3.2.2.
//!
//! With Anton's Ewald parameters the mesh is tiny (32³ over 512 nodes leaves
//! 64 points per node), so the FFT is communication-dominated. The paper's
//! strategy is "a straightforward decomposition into sets of one-dimensional
//! FFTs oriented along each of the three axes", exchanging pencils with a
//! large number of very small messages — hundreds per node — which is only
//! viable because Anton's inter-node latency is tens of nanoseconds.
//!
//! Two transforms share the pencil-exchange geometry:
//!
//! * [`DistributedFft3d`] — double precision, per-line arithmetic identical
//!   to the serial [`crate::Fft3d`].
//! * [`FxDistributedFft3d`] — the fixed-point transform the deterministic
//!   GSE mesh phase runs on. Line transforms touch disjoint pencils, so the
//!   output is bitwise equal to the serial three-pass transform for *every*
//!   node grid — the distribution affects only who computes which line.
//!
//! The message pattern is a pure function of the mesh and node-grid
//! geometry — it never depends on the data — so [`pencil_pass_stats`]
//! computes it statically; the counts feed the performance model in
//! `anton-machine`.

use crate::fixed::{FxComplex, FxFft};
use crate::{Complex, Fft1d};

/// Per-pass communication statistics (gather + scatter of one axis pass).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PassStats {
    /// Messages sent by the busiest node during this pass.
    pub messages_max_node: u64,
    /// Bytes sent by the busiest node during this pass.
    pub bytes_max_node: u64,
    /// Total messages across all nodes.
    pub messages_total: u64,
    /// Total bytes across all nodes.
    pub bytes_total: u64,
}

/// Communication statistics for one full 3D transform (three axis passes).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommStats {
    pub passes: [PassStats; 3],
}

impl CommStats {
    /// The statistics of one axis pass (0 = x, 1 = y, 2 = z).
    pub fn pass(&self, axis: usize) -> &PassStats {
        &self.passes[axis]
    }

    /// Messages sent by the busiest node over the whole transform.
    pub fn messages_max_node(&self) -> u64 {
        self.passes.iter().map(|p| p.messages_max_node).sum()
    }

    pub fn bytes_max_node(&self) -> u64 {
        self.passes.iter().map(|p| p.bytes_max_node).sum()
    }

    /// Total messages across all nodes over the whole transform.
    pub fn messages_total(&self) -> u64 {
        self.passes.iter().map(|p| p.messages_total).sum()
    }

    /// Total bytes across all nodes over the whole transform.
    pub fn bytes_total(&self) -> u64 {
        self.passes.iter().map(|p| p.bytes_total).sum()
    }
}

/// Wire bytes per fixed-point mesh value (a complex 32+32-bit payload, the
/// same footprint the f64 path models).
pub const FX_BYTES_PER_POINT: u64 = 8;

/// Static communication statistics of one axis pass of the pencil exchange:
/// every line along `axis` is gathered to an owner node (chosen round-robin
/// among the `g_axis` nodes the line crosses), transformed there, and
/// scattered back — one message per (non-owner node, line) segment each
/// way, as on Anton where a segment of a 32-point line held by one node is
/// a handful of mesh points.
pub fn pencil_pass_stats(
    mesh: [usize; 3],
    nodes: [usize; 3],
    bytes_per_point: u64,
    axis: usize,
) -> PassStats {
    let n_axis = mesh[axis];
    let g_axis = nodes[axis];
    let seg = n_axis / g_axis; // points per node per line
    let (u_axis, v_axis) = match axis {
        0 => (1usize, 2usize),
        1 => (0, 2),
        _ => (0, 1),
    };
    let (nu, nv) = (mesh[u_axis], mesh[v_axis]);
    let (gu, gv) = (nodes[u_axis], nodes[v_axis]);
    let (su, sv) = (nu / gu, nv / gv); // points per node along u, v

    let node_count = nodes[0] * nodes[1] * nodes[2];
    let mut sends_per_node = vec![0u64; node_count];
    let node_id = |c: [usize; 3]| -> usize { (c[2] * nodes[1] + c[1]) * nodes[0] + c[0] };

    for v in 0..nv {
        for u in 0..nu {
            // The owner of this line among the g_axis nodes it crosses:
            // round-robin on the local (u, v) index within the node tile,
            // so ownership is balanced within every row of nodes.
            let local_line_idx = (u % su) + su * (v % sv);
            let owner_along = local_line_idx % g_axis;

            // Gather: every node holding a segment that is not the owner
            // sends one message of `seg` points; the owner later scatters
            // the transformed segments back (another message each).
            for a in 0..g_axis {
                if a != owner_along {
                    let mut c = [0usize; 3];
                    c[axis] = a;
                    c[u_axis] = u / su;
                    c[v_axis] = v / sv;
                    sends_per_node[node_id(c)] += 1;
                    let mut oc = c;
                    oc[axis] = owner_along;
                    sends_per_node[node_id(oc)] += 1;
                }
            }
        }
    }

    let seg_bytes = seg as u64 * bytes_per_point;
    let messages_max_node = sends_per_node.iter().copied().max().unwrap_or(0);
    let messages_total: u64 = sends_per_node.iter().sum();
    PassStats {
        messages_max_node,
        bytes_max_node: messages_max_node * seg_bytes,
        messages_total,
        bytes_total: messages_total * seg_bytes,
    }
}

fn assert_grid_divides(mesh: [usize; 3], nodes: [usize; 3]) {
    for a in 0..3 {
        assert!(
            nodes[a] >= 1 && mesh[a].is_multiple_of(nodes[a]),
            "node grid {nodes:?} must divide mesh {mesh:?}"
        );
    }
}

/// A 3D FFT distributed over a grid of `gx × gy × gz` nodes, mesh dimensions
/// `nx × ny × nz` (each node dimension must divide the corresponding mesh
/// dimension).
#[derive(Clone, Debug)]
pub struct DistributedFft3d {
    mesh: [usize; 3],
    nodes: [usize; 3],
    plans: [Fft1d; 3],
    /// Bytes per mesh point on the wire (Anton sends fixed-point values;
    /// 8 covers a complex 32+32-bit payload).
    pub bytes_per_point: u64,
}

impl DistributedFft3d {
    pub fn new(mesh: [usize; 3], nodes: [usize; 3]) -> DistributedFft3d {
        assert_grid_divides(mesh, nodes);
        DistributedFft3d {
            mesh,
            nodes,
            plans: [
                Fft1d::new(mesh[0]),
                Fft1d::new(mesh[1]),
                Fft1d::new(mesh[2]),
            ],
            bytes_per_point: 8,
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes.iter().product()
    }

    /// Mesh points owned by each node.
    pub fn points_per_node(&self) -> usize {
        (self.mesh[0] / self.nodes[0])
            * (self.mesh[1] / self.nodes[1])
            * (self.mesh[2] / self.nodes[2])
    }

    /// Forward transform; returns communication statistics. `data` is the
    /// full mesh, x-fastest. The arithmetic is identical to
    /// [`crate::Fft3d::forward`], so the output is bitwise equal to the
    /// serial transform; the distribution affects only the counted traffic.
    pub fn forward(&self, data: &mut [Complex]) -> CommStats {
        self.transform(data, true)
    }

    /// Inverse transform (with 1/N), plus communication statistics.
    pub fn inverse(&self, data: &mut [Complex]) -> CommStats {
        self.transform(data, false)
    }

    fn transform(&self, data: &mut [Complex], fwd: bool) -> CommStats {
        let [nx, ny, nz] = self.mesh;
        assert_eq!(data.len(), nx * ny * nz);
        let mut stats = CommStats::default();
        let mut line = vec![Complex::ZERO; nx.max(ny).max(nz)];
        for axis in 0..3 {
            self.axis_pass(data, &mut line, axis, fwd);
            stats.passes[axis] =
                pencil_pass_stats(self.mesh, self.nodes, self.bytes_per_point, axis);
        }
        stats
    }

    /// One axis pass: execute every line transform (same arithmetic as the
    /// serial path; the message accounting is static, see
    /// [`pencil_pass_stats`]).
    fn axis_pass(&self, data: &mut [Complex], line: &mut [Complex], axis: usize, fwd: bool) {
        let [nx, ny, _nz] = self.mesh;
        let n_axis = self.mesh[axis];
        let (u_axis, v_axis) = match axis {
            0 => (1usize, 2usize),
            1 => (0, 2),
            _ => (0, 1),
        };
        let (nu, nv) = (self.mesh[u_axis], self.mesh[v_axis]);

        for v in 0..nv {
            for u in 0..nu {
                let index = |t: usize| -> usize {
                    let mut c = [0usize; 3];
                    c[axis] = t;
                    c[u_axis] = u;
                    c[v_axis] = v;
                    c[0] + nx * (c[1] + ny * c[2])
                };
                for (t, slot) in line[..n_axis].iter_mut().enumerate() {
                    *slot = data[index(t)];
                }
                if fwd {
                    self.plans[axis].forward(&mut line[..n_axis]);
                } else {
                    self.plans[axis].inverse(&mut line[..n_axis]);
                }
                for (t, slot) in line[..n_axis].iter().enumerate() {
                    data[index(t)] = *slot;
                }
            }
        }
    }
}

/// The fixed-point counterpart of [`DistributedFft3d`]: the same pencil
/// decomposition and message pattern, executing the per-line arithmetic of
/// [`FxFft`] (`forward_scaled` = DFT/N, `inverse_scaled` = standard IDFT).
/// Because every line is a disjoint pencil transformed by a pure integer
/// dataflow, the result is bitwise equal to the serial three-pass transform
/// regardless of the node grid — the invariance the deterministic GSE mesh
/// phase rests on. Communication statistics are static and computed once at
/// plan time.
#[derive(Clone, Debug)]
pub struct FxDistributedFft3d {
    mesh: [usize; 3],
    nodes: [usize; 3],
    plans: [FxFft; 3],
    stats: CommStats,
}

impl FxDistributedFft3d {
    pub fn new(mesh: [usize; 3], nodes: [usize; 3]) -> FxDistributedFft3d {
        assert_grid_divides(mesh, nodes);
        let mut stats = CommStats::default();
        for axis in 0..3 {
            stats.passes[axis] = pencil_pass_stats(mesh, nodes, FX_BYTES_PER_POINT, axis);
        }
        FxDistributedFft3d {
            mesh,
            nodes,
            plans: [
                FxFft::new(mesh[0]),
                FxFft::new(mesh[1]),
                FxFft::new(mesh[2]),
            ],
            stats,
        }
    }

    pub fn node_dims(&self) -> [usize; 3] {
        self.nodes
    }

    pub fn node_count(&self) -> usize {
        self.nodes.iter().product()
    }

    /// Static pencil-exchange statistics of one 3D transform (forward and
    /// inverse have the identical pattern).
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// In-place forward transform (`DFT/N` per axis). `line` is a reusable
    /// gather buffer, grown on first use — the hot path never allocates.
    pub fn forward(&self, data: &mut [FxComplex], line: &mut Vec<FxComplex>) {
        self.transform(data, line, true);
    }

    /// In-place inverse transform (standard IDFT, carrying 1/N per axis).
    pub fn inverse(&self, data: &mut [FxComplex], line: &mut Vec<FxComplex>) {
        self.transform(data, line, false);
    }

    fn transform(&self, data: &mut [FxComplex], line: &mut Vec<FxComplex>, fwd: bool) {
        let [nx, ny, nz] = self.mesh;
        assert_eq!(data.len(), nx * ny * nz);
        line.clear();
        line.resize(nx.max(ny).max(nz), FxComplex::ZERO);
        for axis in 0..3 {
            self.axis_pass(data, line, axis, fwd);
        }
    }

    fn axis_pass(&self, data: &mut [FxComplex], line: &mut [FxComplex], axis: usize, fwd: bool) {
        let [nx, ny, _nz] = self.mesh;
        let n_axis = self.mesh[axis];
        let (u_axis, v_axis) = match axis {
            0 => (1usize, 2usize),
            1 => (0, 2),
            _ => (0, 1),
        };
        let (nu, nv) = (self.mesh[u_axis], self.mesh[v_axis]);

        for v in 0..nv {
            for u in 0..nu {
                let index = |t: usize| -> usize {
                    let mut c = [0usize; 3];
                    c[axis] = t;
                    c[u_axis] = u;
                    c[v_axis] = v;
                    c[0] + nx * (c[1] + ny * c[2])
                };
                for (t, slot) in line[..n_axis].iter_mut().enumerate() {
                    *slot = data[index(t)];
                }
                if fwd {
                    self.plans[axis].forward_scaled(&mut line[..n_axis]);
                } else {
                    self.plans[axis].inverse_scaled(&mut line[..n_axis]);
                }
                for (t, slot) in line[..n_axis].iter().enumerate() {
                    data[index(t)] = *slot;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fft3d;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_serial_bitwise() {
        let mesh = [16usize, 16, 16];
        let dist = DistributedFft3d::new(mesh, [4, 4, 4]);
        let serial = Fft3d::new(mesh[0], mesh[1], mesh[2]);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(21);
        let x: Vec<Complex> = (0..mesh.iter().product::<usize>())
            .map(|_| Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        let mut a = x.clone();
        let mut b = x;
        dist.forward(&mut a);
        serial.forward(&mut b);
        assert_eq!(
            a.iter()
                .map(|c| (c.re.to_bits(), c.im.to_bits()))
                .collect::<Vec<_>>(),
            b.iter()
                .map(|c| (c.re.to_bits(), c.im.to_bits()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn anton_config_sends_hundreds_of_messages_per_node() {
        // The paper's configuration: 32³ mesh over an 8×8×8 torus.
        let dist = DistributedFft3d::new([32, 32, 32], [8, 8, 8]);
        assert_eq!(dist.points_per_node(), 64);
        let mut data = vec![Complex::ONE; 32 * 32 * 32];
        let stats = dist.forward(&mut data);
        let msgs = stats.messages_max_node();
        // Forward pass alone: "hundreds per node" counting both FFTs; a
        // single transform should be in the high tens to low hundreds.
        assert!(
            (50..500).contains(&msgs),
            "unexpected per-node message count for 32^3/8^3: {msgs}"
        );
    }

    #[test]
    fn single_node_sends_nothing() {
        let dist = DistributedFft3d::new([8, 8, 8], [1, 1, 1]);
        let mut data = vec![Complex::ONE; 512];
        let stats = dist.forward(&mut data);
        assert_eq!(stats.messages_max_node(), 0);
        assert_eq!(stats.passes[0].bytes_total, 0);
    }

    #[test]
    fn inverse_roundtrip() {
        let mesh = [8usize, 8, 8];
        let dist = DistributedFft3d::new(mesh, [2, 2, 2]);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(22);
        let x: Vec<Complex> = (0..512)
            .map(|_| Complex::new(rng.gen::<f64>(), 0.0))
            .collect();
        let mut y = x.clone();
        dist.forward(&mut y);
        dist.inverse(&mut y);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).norm2() < 1e-20);
        }
    }

    /// Serial three-pass fixed transform mirroring the pre-distribution GSE
    /// pass order: x lines, then y lines, then z lines.
    fn fx_serial_3d(mesh: [usize; 3], data: &mut [FxComplex], fwd: bool) {
        let [nx, ny, nz] = mesh;
        let plans = [FxFft::new(nx), FxFft::new(ny), FxFft::new(nz)];
        let mut line = vec![FxComplex::ZERO; nx.max(ny).max(nz)];
        let run = |p: &FxFft, l: &mut [FxComplex]| {
            if fwd {
                p.forward_scaled(l);
            } else {
                p.inverse_scaled(l);
            }
        };
        for z in 0..nz {
            for y in 0..ny {
                let base = nx * (y + ny * z);
                line[..nx].copy_from_slice(&data[base..base + nx]);
                run(&plans[0], &mut line[..nx]);
                data[base..base + nx].copy_from_slice(&line[..nx]);
            }
        }
        for z in 0..nz {
            for x in 0..nx {
                for y in 0..ny {
                    line[y] = data[x + nx * (y + ny * z)];
                }
                run(&plans[1], &mut line[..ny]);
                for y in 0..ny {
                    data[x + nx * (y + ny * z)] = line[y];
                }
            }
        }
        for y in 0..ny {
            for x in 0..nx {
                for z in 0..nz {
                    line[z] = data[x + nx * (y + ny * z)];
                }
                run(&plans[2], &mut line[..nz]);
                for z in 0..nz {
                    data[x + nx * (y + ny * z)] = line[z];
                }
            }
        }
    }

    fn fx_random_mesh(n: usize, seed: u64) -> Vec<FxComplex> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| FxComplex::new(rng.gen::<i32>() as i64, rng.gen::<i32>() as i64))
            .collect()
    }

    /// The tentpole invariance: the distributed fixed-point transform is
    /// bitwise identical to the serial pass order for every node grid (the
    /// grids the simulated machine actually uses: 1, 2×2×2, 4×4×4).
    #[test]
    fn fx_distributed_matches_serial_bitwise_across_node_grids() {
        let mesh = [16usize, 16, 16];
        let x = fx_random_mesh(16 * 16 * 16, 31);
        for fwd in [true, false] {
            let mut want = x.clone();
            fx_serial_3d(mesh, &mut want, fwd);
            for nodes in [[1usize, 1, 1], [2, 2, 2], [4, 4, 4]] {
                let fx = FxDistributedFft3d::new(mesh, nodes);
                let mut got = x.clone();
                let mut line = Vec::new();
                if fwd {
                    fx.forward(&mut got, &mut line);
                } else {
                    fx.inverse(&mut got, &mut line);
                }
                assert_eq!(got, want, "nodes {nodes:?}, fwd {fwd}");
            }
        }
    }

    /// The fixed-point plan's static statistics equal the f64 path's counted
    /// statistics — one shared message-pattern model.
    #[test]
    fn fx_stats_match_f64_counted_stats() {
        let mesh = [16usize, 16, 16];
        for nodes in [[1usize, 1, 1], [2, 2, 2], [4, 4, 4], [4, 2, 1]] {
            let fx = FxDistributedFft3d::new(mesh, nodes);
            let f64d = DistributedFft3d::new(mesh, nodes);
            let mut data = vec![Complex::ONE; 16 * 16 * 16];
            let counted = f64d.forward(&mut data);
            assert_eq!(*fx.stats(), counted, "nodes {nodes:?}");
            if nodes == [1, 1, 1] {
                assert_eq!(fx.stats().messages_total(), 0);
            } else {
                assert!(fx.stats().messages_total() > 0);
                assert!(fx.stats().bytes_total() > 0);
            }
        }
    }

    #[test]
    fn fx_inverse_roundtrip_is_close() {
        // Fixed-point scaling: forward computes DFT/N, the standard inverse
        // IDFT undoes the DFT and carries its own 1/N — the round-trip
        // returns x/N (plus rounding noise), so compare against the shifted
        // input.
        let mesh = [8usize, 8, 8];
        let fx = FxDistributedFft3d::new(mesh, [2, 2, 2]);
        let x: Vec<FxComplex> = fx_random_mesh(512, 33)
            .into_iter()
            .map(|c| FxComplex::new(c.re << 16, c.im << 16))
            .collect();
        let mut y = x.clone();
        let mut line = Vec::new();
        fx.forward(&mut y, &mut line);
        fx.inverse(&mut y, &mut line);
        for (a, b) in x.iter().zip(&y) {
            let want = a.re >> 9; // /N = /512 = >>9, coarse check
            assert!(
                (b.re - want).abs() <= (want.abs() >> 6) + 64,
                "{} vs {want}",
                b.re
            );
        }
    }
}
