//! 3D FFT as three passes of 1D transforms.

use crate::{Complex, Fft1d};

/// A 3D FFT plan over an `nx × ny × nz` grid stored x-fastest:
/// `index(x, y, z) = x + nx * (y + ny * z)`.
#[derive(Clone, Debug)]
pub struct Fft3d {
    nx: usize,
    ny: usize,
    nz: usize,
    px: Fft1d,
    py: Fft1d,
    pz: Fft1d,
}

impl Fft3d {
    pub fn new(nx: usize, ny: usize, nz: usize) -> Fft3d {
        Fft3d {
            nx,
            ny,
            nz,
            px: Fft1d::new(nx),
            py: Fft1d::new(ny),
            pz: Fft1d::new(nz),
        }
    }

    pub fn cubic(n: usize) -> Fft3d {
        Fft3d::new(n, n, n)
    }

    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        x + self.nx * (y + self.ny * z)
    }

    pub fn forward(&self, data: &mut [Complex]) {
        self.pass_all(data, true);
    }

    /// Inverse including the global 1/(nx·ny·nz) factor.
    pub fn inverse(&self, data: &mut [Complex]) {
        self.pass_all(data, false);
    }

    fn pass_all(&self, data: &mut [Complex], fwd: bool) {
        assert_eq!(data.len(), self.len());
        let mut line = vec![Complex::ZERO; self.nx.max(self.ny).max(self.nz)];
        // X lines.
        for z in 0..self.nz {
            for y in 0..self.ny {
                let base = self.index(0, y, z);
                line[..self.nx].copy_from_slice(&data[base..base + self.nx]);
                if fwd {
                    self.px.forward(&mut line[..self.nx]);
                } else {
                    self.px.inverse(&mut line[..self.nx]);
                }
                data[base..base + self.nx].copy_from_slice(&line[..self.nx]);
            }
        }
        // Y lines.
        for z in 0..self.nz {
            for x in 0..self.nx {
                for y in 0..self.ny {
                    line[y] = data[self.index(x, y, z)];
                }
                if fwd {
                    self.py.forward(&mut line[..self.ny]);
                } else {
                    self.py.inverse(&mut line[..self.ny]);
                }
                for y in 0..self.ny {
                    data[self.index(x, y, z)] = line[y];
                }
            }
        }
        // Z lines.
        for y in 0..self.ny {
            for x in 0..self.nx {
                for z in 0..self.nz {
                    line[z] = data[self.index(x, y, z)];
                }
                if fwd {
                    self.pz.forward(&mut line[..self.nz]);
                } else {
                    self.pz.inverse(&mut line[..self.nz]);
                }
                for z in 0..self.nz {
                    data[self.index(x, y, z)] = line[z];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_3d() {
        let plan = Fft3d::new(8, 4, 16);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(6);
        let x: Vec<Complex> = (0..plan.len())
            .map(|_| Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).norm2() < 1e-20);
        }
    }

    #[test]
    fn plane_wave_transforms_to_delta() {
        let n = 8;
        let plan = Fft3d::cubic(n);
        let (kx, ky, kz) = (2usize, 3, 5);
        let mut data = vec![Complex::ZERO; plan.len()];
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let phase =
                        2.0 * std::f64::consts::PI * (kx * x + ky * y + kz * z) as f64 / n as f64;
                    data[plan.index(x, y, z)] = Complex::cis(phase);
                }
            }
        }
        plan.forward(&mut data);
        let total = plan.len() as f64;
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let v = data[plan.index(x, y, z)];
                    if (x, y, z) == (kx, ky, kz) {
                        assert!((v.re - total).abs() < 1e-9 && v.im.abs() < 1e-9);
                    } else {
                        assert!(v.norm2() < 1e-16, "leak at ({x},{y},{z}): {v:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn real_input_has_hermitian_spectrum() {
        let plan = Fft3d::cubic(8);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(8);
        let mut data: Vec<Complex> = (0..plan.len())
            .map(|_| Complex::new(rng.gen::<f64>() - 0.5, 0.0))
            .collect();
        plan.forward(&mut data);
        let n = 8;
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let a = data[plan.index(x, y, z)];
                    let b = data[plan.index((n - x) % n, (n - y) % n, (n - z) % n)];
                    assert!((a - b.conj()).norm2() < 1e-18);
                }
            }
        }
    }
}
