//! Fast Fourier transforms for the Anton reproduction, written from scratch.
//!
//! Anton evaluates long-range electrostatics on a small mesh (32³ for the
//! 40–80 Å systems of the paper) with two sequentially dependent 3D FFTs per
//! long-range step. Three implementations live here:
//!
//! * [`Fft1d`] / [`Fft3d`] — double-precision radix-2 transforms used by the
//!   reference engine's SPME and by accuracy tests.
//! * [`fixed`] — a deterministic fixed-point FFT modeling the 32-bit
//!   arithmetic of Anton's flexible subsystem. Per-stage scaling keeps the
//!   butterflies in range; round-to-nearest/even matches the ASIC rule. The
//!   Anton engine (`anton-core`) uses this path so that its entire force
//!   pipeline is bit-reproducible.
//! * [`distributed`] — the spatially distributed 3D FFT of paper §3.2.2 and
//!   the companion SC'09 FFT paper: the mesh lives on an `nx×ny×nz` node
//!   grid, and each of the three axis passes redistributes pencils with many
//!   small messages (hundreds per node on the 512-node machine), which the
//!   model counts for the performance model.

pub mod complex;
pub mod distributed;
pub mod fft1d;
pub mod fft3d;
pub mod fixed;

pub use complex::Complex;
pub use distributed::{
    pencil_pass_stats, CommStats, DistributedFft3d, FxDistributedFft3d, PassStats,
    FX_BYTES_PER_POINT,
};
pub use fft1d::Fft1d;
pub use fft3d::Fft3d;
