//! Minimal complex arithmetic (no external dependency).

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number in double precision.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    #[inline]
    pub const fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Complex {
        Complex::new(theta.cos(), theta.sin())
    }

    #[inline]
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    #[inline]
    pub fn norm2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    #[inline]
    pub fn scale(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, o: Complex) {
        *self = *self + o;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}
