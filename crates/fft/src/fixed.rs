//! Deterministic fixed-point FFT.
//!
//! Anton's flexible subsystem performs the FFT in 32-bit fixed-point
//! arithmetic; because every operation is integer arithmetic with a fixed
//! dataflow, the transform is bit-reproducible and independent of how the
//! mesh is distributed across nodes. This module reproduces that property:
//! all butterflies run on `i64` raw values with round-to-nearest/even
//! rounding and per-stage halving (block scaling) to prevent overflow.
//!
//! Scale bookkeeping: [`FxFft::forward_scaled`] computes `DFT(x) / N` and
//! [`FxFft::inverse_scaled`] computes the standard unitary-style inverse
//! `IDFT(X)` (which already carries `1/N`). Callers undo the power-of-two
//! factors with exact left shifts where needed.

use anton_fixpoint::rne_shr_i128;

/// Fraction bits used for twiddle factors.
pub const TWIDDLE_FRAC: u32 = 30;

/// A complex value as a pair of raw fixed-point i64s (format chosen by the
/// caller and tracked out of band — the FFT is format-agnostic).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FxComplex {
    pub re: i64,
    pub im: i64,
}

impl FxComplex {
    pub const ZERO: FxComplex = FxComplex { re: 0, im: 0 };

    #[inline]
    pub fn new(re: i64, im: i64) -> FxComplex {
        FxComplex { re, im }
    }

    #[inline]
    fn wrapping_add(self, o: FxComplex) -> FxComplex {
        FxComplex::new(self.re.wrapping_add(o.re), self.im.wrapping_add(o.im))
    }

    #[inline]
    fn wrapping_sub(self, o: FxComplex) -> FxComplex {
        FxComplex::new(self.re.wrapping_sub(o.re), self.im.wrapping_sub(o.im))
    }

    /// Multiply by a Q30 twiddle and shift right by `TWIDDLE_FRAC + extra`
    /// with round-to-nearest/even.
    #[inline]
    fn mul_twiddle_shr(self, w: FxComplex, extra: u32) -> FxComplex {
        let re = self.re as i128 * w.re as i128 - self.im as i128 * w.im as i128;
        let im = self.re as i128 * w.im as i128 + self.im as i128 * w.re as i128;
        FxComplex::new(
            rne_shr_i128(re, TWIDDLE_FRAC + extra),
            rne_shr_i128(im, TWIDDLE_FRAC + extra),
        )
    }

    #[inline]
    fn half(self) -> FxComplex {
        FxComplex::new(
            anton_fixpoint::rne_shr_i64(self.re, 1),
            anton_fixpoint::rne_shr_i64(self.im, 1),
        )
    }
}

/// Fixed-point radix-2 FFT plan with quantized twiddles.
#[derive(Clone, Debug)]
pub struct FxFft {
    n: usize,
    /// Forward twiddles `round(2^30 · e^{-2πi j/n})`, `j < n/2`.
    twiddles: Vec<FxComplex>,
    bitrev: Vec<u32>,
}

impl FxFft {
    pub fn new(n: usize) -> FxFft {
        assert!(n.is_power_of_two() && n >= 1);
        let log2n = n.trailing_zeros().max(1);
        let scale = (1i64 << TWIDDLE_FRAC) as f64;
        let twiddles = (0..n / 2)
            .map(|j| {
                let th = -2.0 * std::f64::consts::PI * j as f64 / n as f64;
                FxComplex::new(
                    anton_fixpoint::rounding::rne_f64(th.cos() * scale) as i64,
                    anton_fixpoint::rounding::rne_f64(th.sin() * scale) as i64,
                )
            })
            .collect();
        let bitrev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - log2n))
            .collect();
        FxFft {
            n,
            twiddles,
            bitrev,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place `DFT(x)/N` with per-stage block scaling.
    pub fn forward_scaled(&self, data: &mut [FxComplex]) {
        self.transform(data, false);
    }

    /// In-place standard inverse `IDFT(X) = (1/N)·Σ X_k e^{+2πi nk/N}`.
    pub fn inverse_scaled(&self, data: &mut [FxComplex]) {
        self.transform(data, true);
    }

    fn transform(&self, data: &mut [FxComplex], inverse: bool) {
        assert_eq!(data.len(), self.n);
        if self.n == 1 {
            return;
        }
        for i in 0..self.n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        let mut len = 2usize;
        while len <= self.n {
            let half = len / 2;
            let stride = self.n / len;
            for start in (0..self.n).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddles[k * stride];
                    if inverse {
                        w.im = w.im.wrapping_neg();
                    }
                    let a = data[start + k];
                    // b·w / 2 with a single rounding; a ± that, then /2 on the
                    // sum-side term to keep each stage's output bounded by the
                    // stage input maximum.
                    let bw = data[start + k + half].mul_twiddle_shr(w, 1);
                    let ah = a.half();
                    data[start + k] = ah.wrapping_add(bw);
                    data[start + k + half] = ah.wrapping_sub(bw);
                }
            }
            len <<= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Complex, Fft1d};
    use rand::{Rng, SeedableRng};

    const DATA_FRAC: u32 = 40;

    fn to_fx(x: &[Complex]) -> Vec<FxComplex> {
        x.iter()
            .map(|c| {
                FxComplex::new(
                    anton_fixpoint::rounding::rne_f64(c.re * (1i64 << DATA_FRAC) as f64) as i64,
                    anton_fixpoint::rounding::rne_f64(c.im * (1i64 << DATA_FRAC) as f64) as i64,
                )
            })
            .collect()
    }

    fn to_f64(x: &[FxComplex]) -> Vec<Complex> {
        let s = 1.0 / (1i64 << DATA_FRAC) as f64;
        x.iter()
            .map(|c| Complex::new(c.re as f64 * s, c.im as f64 * s))
            .collect()
    }

    #[test]
    fn forward_matches_f64_fft_within_quantization() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(17);
        for &n in &[8usize, 32, 64] {
            let x: Vec<Complex> = (0..n)
                .map(|_| Complex::new(rng.gen::<f64>() * 2.0 - 1.0, rng.gen::<f64>() * 2.0 - 1.0))
                .collect();
            let mut fx = to_fx(&x);
            FxFft::new(n).forward_scaled(&mut fx);
            let got = to_f64(&fx);
            let mut want = x.clone();
            Fft1d::new(n).forward(&mut want);
            let scale = 1.0 / n as f64;
            let mut err: f64 = 0.0;
            let mut norm: f64 = 0.0;
            for (g, w) in got.iter().zip(&want) {
                err += (*g - w.scale(scale)).norm2();
                norm += w.scale(scale).norm2();
            }
            let rel = (err / norm).sqrt();
            assert!(rel < 1e-7, "n={n} rel={rel:e}");
        }
    }

    #[test]
    fn forward_is_bitwise_deterministic() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(18);
        let n = 32;
        let x: Vec<FxComplex> = (0..n)
            .map(|_| FxComplex::new(rng.gen::<i64>() >> 20, rng.gen::<i64>() >> 20))
            .collect();
        let plan = FxFft::new(n);
        let mut a = x.clone();
        let mut b = x.clone();
        plan.forward_scaled(&mut a);
        plan.forward_scaled(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_recovers_input_over_n() {
        // forward gives X/N, inverse of X is x, so inverse(forward(x)) = x/N.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(19);
        let n = 32usize;
        let x: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.gen::<f64>() * 2.0 - 1.0, rng.gen::<f64>() * 2.0 - 1.0))
            .collect();
        let mut fx = to_fx(&x);
        let plan = FxFft::new(n);
        plan.forward_scaled(&mut fx);
        plan.inverse_scaled(&mut fx);
        // Undo the extra 1/N with an exact shift.
        for v in fx.iter_mut() {
            v.re <<= n.trailing_zeros();
            v.im <<= n.trailing_zeros();
        }
        let got = to_f64(&fx);
        for (g, w) in got.iter().zip(&x) {
            assert!((*g - *w).norm2().sqrt() < 1e-8, "{g:?} vs {w:?}");
        }
    }
}
