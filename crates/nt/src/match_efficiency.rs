//! Match efficiency of the NT method (paper Table 3).
//!
//! Each PPIP is fed by eight match units that test tower×plate candidate
//! pairs against the cutoff. The *match efficiency* — necessary interactions
//! over considered pairs — determines PPIP utilization: if fewer than one in
//! eight candidates passes, the pipelines starve. Table 3 shows how dividing
//! the home box into subboxes recovers efficiency as boxes grow relative to
//! the cutoff.

use crate::regions::ImportRegions;
use anton_geometry::{PeriodicBox, Vec3};
use rand::{Rng, SeedableRng};

/// Match-efficiency calculator for a home box of side `box_side` divided
/// into `subdiv³` subboxes, with interaction cutoff `cutoff`.
#[derive(Clone, Copy, Debug)]
pub struct MatchEfficiency {
    pub box_side: f64,
    pub subdiv: usize,
    pub cutoff: f64,
}

impl MatchEfficiency {
    pub fn new(box_side: f64, subdiv: usize, cutoff: f64) -> MatchEfficiency {
        assert!(subdiv >= 1);
        MatchEfficiency {
            box_side,
            subdiv,
            cutoff,
        }
    }

    /// Expected match efficiency for uniform atom density (the Table 3
    /// quantity): necessary pairs per node over considered tower×plate pairs
    /// per node, with the NT method applied independently to every subbox.
    pub fn analytic(&self) -> f64 {
        let c = self.box_side / self.subdiv as f64; // subbox side
        let r = self.cutoff;
        let reg = ImportRegions::new(c, r);
        // Regions *including* the home subbox.
        let v_tower = c * c * (c + 2.0 * r);
        let v_plate = c * (c * c) + reg.nt_plate_volume();
        let considered_per_subbox = v_tower * v_plate; // × ρ²
        let considered = considered_per_subbox * (self.subdiv as f64).powi(3);
        // Necessary per node: each within-cutoff pair computed exactly once.
        let necessary =
            0.5 * self.box_side.powi(3) * (4.0 / 3.0) * std::f64::consts::PI * r.powi(3);
        necessary / considered
    }

    /// Monte Carlo estimate over explicit random atoms: counts actual
    /// tower×plate candidate pairs and actual within-cutoff pairs for the
    /// node at the grid origin, averaged over a periodic grid of boxes big
    /// enough to contain the cutoff.
    pub fn monte_carlo(&self, density: f64, seed: u64) -> f64 {
        let b = self.box_side;
        let r = self.cutoff;
        // A periodic world large enough that regions don't self-overlap.
        let cells = (2.0 * (r + b) / b).ceil() as usize + 1;
        let edge = cells as f64 * b;
        let pbox = PeriodicBox::cubic(edge);
        let n_atoms = (density * pbox.volume()).round() as usize;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let pos: Vec<Vec3> = (0..n_atoms)
            .map(|_| {
                Vec3::new(
                    rng.gen::<f64>() * edge,
                    rng.gen::<f64>() * edge,
                    rng.gen::<f64>() * edge,
                )
            })
            .collect();

        let c = b / self.subdiv as f64;
        let mut considered = 0u64;
        // Tower×plate candidates for every subbox of the origin node's box.
        for sz in 0..self.subdiv {
            for sy in 0..self.subdiv {
                for sx in 0..self.subdiv {
                    let origin = Vec3::new(sx as f64 * c, sy as f64 * c, sz as f64 * c);
                    let reg = ImportRegions::new(c, r);
                    let mut tower = 0u64;
                    let mut plate = 0u64;
                    for p in &pos {
                        // Local coordinates with minimum image.
                        let d = pbox.min_image(*p, origin);
                        let local = d;
                        let in_home = (0.0..c).contains(&local.x)
                            && (0.0..c).contains(&local.y)
                            && (0.0..c).contains(&local.z);
                        if in_home || reg.nt_tower(local) {
                            tower += 1;
                        }
                        if in_home || reg.nt_plate(local) {
                            plate += 1;
                        }
                    }
                    considered += tower * plate;
                }
            }
        }

        // Necessary pairs per node = (total within-cutoff pairs) / n_nodes,
        // estimated from density (counting all pairs explicitly would be the
        // dominant cost here and adds nothing beyond the estimate).
        let necessary =
            0.5 * density * density * b.powi(3) * (4.0 / 3.0) * std::f64::consts::PI * r.powi(3);
        necessary / considered as f64
    }

    /// The paper's Table 3 grid (box sides 8/16/32 Å, subdivisions 1/2/4,
    /// 13 Å cutoff), as fractions.
    pub fn table3() -> Vec<(f64, usize, f64)> {
        let mut rows = Vec::new();
        for &b in &[8.0f64, 16.0, 32.0] {
            for &s in &[1usize, 2, 4] {
                rows.push((b, s, MatchEfficiency::new(b, s, 13.0).analytic()));
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 3, 13 Å cutoff. Rows: box side; columns: 1, 2³, 4³
    /// subboxes.
    const PAPER_TABLE3: [(f64, [f64; 3]); 3] = [
        (8.0, [0.25, 0.40, 0.51]),
        (16.0, [0.12, 0.25, 0.40]),
        (32.0, [0.04, 0.12, 0.25]),
    ];

    #[test]
    fn analytic_reproduces_paper_table3() {
        for &(b, cols) in &PAPER_TABLE3 {
            for (i, &s) in [1usize, 2, 4].iter().enumerate() {
                let eff = MatchEfficiency::new(b, s, 13.0).analytic();
                assert!(
                    (eff - cols[i]).abs() < 0.02,
                    "b={b} s={s}: got {eff:.3}, paper {}",
                    cols[i]
                );
            }
        }
    }

    #[test]
    fn table3_diagonal_structure() {
        // b and subbox side c = b/s enter only through c: (8,1) ≈ (16,2) ≈ (32,4).
        let e1 = MatchEfficiency::new(8.0, 1, 13.0).analytic();
        let e2 = MatchEfficiency::new(16.0, 2, 13.0).analytic();
        let e3 = MatchEfficiency::new(32.0, 4, 13.0).analytic();
        assert!((e1 - e2).abs() < 1e-9);
        assert!((e2 - e3).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_agrees_with_analytic() {
        // Average several random configurations: a single one carries ~12%
        // relative noise in the tower×plate product.
        let me = MatchEfficiency::new(8.0, 1, 13.0);
        let mc: f64 = (0..12).map(|s| me.monte_carlo(0.05, 7 + s)).sum::<f64>() / 12.0;
        let an = me.analytic();
        assert!((mc - an).abs() / an < 0.08, "mc {mc} vs analytic {an}");
    }

    #[test]
    fn subboxes_increase_efficiency() {
        let base = MatchEfficiency::new(16.0, 1, 13.0).analytic();
        let sub2 = MatchEfficiency::new(16.0, 2, 13.0).analytic();
        let sub4 = MatchEfficiency::new(16.0, 4, 13.0).analytic();
        assert!(sub2 > base && sub4 > sub2);
    }
}
