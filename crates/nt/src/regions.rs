//! Import-region geometry (paper Figure 3).
//!
//! All regions are described for a cubic home box of side `b` with cutoff
//! radius `r`, in the home box's local coordinates (home box = `[0,b)³`).
//! Analytic volumes are cross-validated against voxel integration in tests.

use anton_geometry::{voxel, Vec3};

/// Analytic and predicate forms of the competing import regions.
#[derive(Clone, Copy, Debug)]
pub struct ImportRegions {
    /// Home box side length (Å).
    pub b: f64,
    /// Cutoff radius (Å).
    pub r: f64,
}

impl ImportRegions {
    pub fn new(b: f64, r: f64) -> ImportRegions {
        assert!(b > 0.0 && r > 0.0);
        ImportRegions { b, r }
    }

    /// Distance from a point to the home box footprint `[0,b]²` in xy.
    fn xy_dist(&self, p: Vec3) -> f64 {
        let dx = (-p.x).max(0.0).max(p.x - self.b);
        let dy = (-p.y).max(0.0).max(p.y - self.b);
        (dx * dx + dy * dy).sqrt()
    }

    /// NT tower import predicate: the home-box column extended ±r in z,
    /// excluding the home box itself (Figure 3a, vertical bar).
    pub fn nt_tower(&self, p: Vec3) -> bool {
        let in_footprint = p.x >= 0.0 && p.x < self.b && p.y >= 0.0 && p.y < self.b;
        let in_column = p.z >= -self.r && p.z < self.b + self.r;
        let in_home = p.z >= 0.0 && p.z < self.b;
        in_footprint && in_column && !in_home
    }

    /// NT plate import predicate: the half-neighborhood of the home box in
    /// its own z-layer (Figure 3a, horizontal slab). The "half" is the side
    /// with x beyond the home box, plus the y > b strip at matching x — one
    /// of the standard asymmetric conventions guaranteeing each pair is
    /// considered once.
    pub fn nt_plate(&self, p: Vec3) -> bool {
        if p.z < 0.0 || p.z >= self.b {
            return false;
        }
        if self.xy_dist(p) >= self.r {
            return false;
        }
        let in_footprint = p.x >= 0.0 && p.x < self.b && p.y >= 0.0 && p.y < self.b;
        if in_footprint {
            return false; // home box isn't imported
        }
        // Half selection: strictly to the +x side, or straight above in +y.
        p.x >= self.b || (p.x >= 0.0 && p.y >= self.b)
    }

    /// The symmetric plate used for charge spreading / force interpolation
    /// (Figure 3c): the full ring in the home layer.
    pub fn spreading_plate(&self, p: Vec3) -> bool {
        if p.z < 0.0 || p.z >= self.b {
            return false;
        }
        let in_footprint = p.x >= 0.0 && p.x < self.b && p.y >= 0.0 && p.y < self.b;
        !in_footprint && self.xy_dist(p) < self.r
    }

    /// Traditional half-shell import predicate (Figure 3b): half of the
    /// shell of thickness r around the home box.
    pub fn half_shell(&self, p: Vec3) -> bool {
        let in_home = (0.0..self.b).contains(&p.x)
            && (0.0..self.b).contains(&p.y)
            && (0.0..self.b).contains(&p.z);
        if in_home {
            return false;
        }
        // Distance to the box.
        let d = Vec3::new(
            (-p.x).max(0.0).max(p.x - self.b),
            (-p.y).max(0.0).max(p.y - self.b),
            (-p.z).max(0.0).max(p.z - self.b),
        );
        if d.norm2() >= self.r * self.r {
            return false;
        }
        // Half selection by z, with the home layer split by x then y.
        if p.z >= self.b {
            true
        } else if p.z < 0.0 {
            false
        } else {
            p.x >= self.b || (p.x >= 0.0 && p.x < self.b && p.y >= self.b)
        }
    }

    /// Analytic NT tower import volume: `2 r b²`.
    pub fn nt_tower_volume(&self) -> f64 {
        2.0 * self.r * self.b * self.b
    }

    /// Analytic NT plate import volume: `b (2 r b + π r²/2)`.
    pub fn nt_plate_volume(&self) -> f64 {
        self.b * (2.0 * self.r * self.b + std::f64::consts::PI * self.r * self.r / 2.0)
    }

    /// Total NT import volume.
    pub fn nt_total_volume(&self) -> f64 {
        self.nt_tower_volume() + self.nt_plate_volume()
    }

    /// Analytic symmetric spreading-plate volume: `b (4 r b + π r²)`.
    pub fn spreading_plate_volume(&self) -> f64 {
        self.b * (4.0 * self.r * self.b + std::f64::consts::PI * self.r * self.r)
    }

    /// Analytic half-shell import volume:
    /// `(6 b² r + 3π b r² + 4π r³/3) / 2`.
    pub fn half_shell_volume(&self) -> f64 {
        0.5 * (6.0 * self.b * self.b * self.r
            + 3.0 * std::f64::consts::PI * self.b * self.r * self.r
            + 4.0 / 3.0 * std::f64::consts::PI * self.r.powi(3))
    }

    /// Voxel-integrated volume of any of the predicates (deterministic),
    /// for test cross-validation and for rendering Figure 3 numerically.
    pub fn measure(&self, pred: impl Fn(Vec3) -> bool, n: usize) -> f64 {
        let reach = self.b + self.r + 1.0;
        let dom = voxel::Domain::new(Vec3::splat(-reach), Vec3::splat(reach));
        voxel::grid_volume(dom, n, pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 150;

    #[test]
    fn tower_volume_analytic_vs_voxel() {
        let reg = ImportRegions::new(8.0, 13.0);
        let v = reg.measure(|p| reg.nt_tower(p), N);
        let a = reg.nt_tower_volume();
        assert!((v - a).abs() / a < 0.02, "voxel {v} vs analytic {a}");
    }

    #[test]
    fn plate_volume_analytic_vs_voxel() {
        let reg = ImportRegions::new(8.0, 13.0);
        let v = reg.measure(|p| reg.nt_plate(p), N);
        let a = reg.nt_plate_volume();
        assert!((v - a).abs() / a < 0.02, "voxel {v} vs analytic {a}");
    }

    #[test]
    fn half_shell_volume_analytic_vs_voxel() {
        let reg = ImportRegions::new(8.0, 13.0);
        let v = reg.measure(|p| reg.half_shell(p), N);
        let a = reg.half_shell_volume();
        assert!((v - a).abs() / a < 0.02, "voxel {v} vs analytic {a}");
    }

    #[test]
    fn spreading_plate_is_larger_than_nt_plate() {
        let reg = ImportRegions::new(10.0, 13.0);
        assert!(reg.spreading_plate_volume() > reg.nt_plate_volume());
        let v = reg.measure(|p| reg.spreading_plate(p), N);
        let a = reg.spreading_plate_volume();
        assert!((v - a).abs() / a < 0.02);
    }

    #[test]
    fn nt_beats_half_shell_at_high_parallelism() {
        // The NT advantage grows as boxes shrink relative to the cutoff
        // (paper: "an advantage that grows asymptotically as the level of
        // parallelism increases").
        let r = 13.0;
        let ratio_small_box = {
            let reg = ImportRegions::new(4.0, r);
            reg.nt_total_volume() / reg.half_shell_volume()
        };
        let ratio_large_box = {
            let reg = ImportRegions::new(26.0, r);
            reg.nt_total_volume() / reg.half_shell_volume()
        };
        assert!(ratio_small_box < ratio_large_box);
        assert!(
            ratio_small_box < 0.5,
            "NT should import far less: {ratio_small_box}"
        );
    }

    #[test]
    fn regions_are_disjoint_from_home_box() {
        let reg = ImportRegions::new(8.0, 6.0);
        for &p in &[
            Vec3::new(4.0, 4.0, 4.0),
            Vec3::new(0.1, 0.1, 0.1),
            Vec3::new(7.9, 7.9, 7.9),
        ] {
            assert!(!reg.nt_tower(p));
            assert!(!reg.nt_plate(p));
            assert!(!reg.half_shell(p));
            assert!(!reg.spreading_plate(p));
        }
    }
}
