//! Deferred migration and constraint-group co-location (paper §3.2.4).
//!
//! Anton keeps every atom of a constraint group on one node (so integration
//! is purely local) and migrates atoms between nodes only every N time steps
//! (so the expensive sequential bookkeeping leaves the critical path). Both
//! choices let atoms sit on an "incorrect" node temporarily; correctness is
//! preserved by expanding the NT import region as if the cutoff were larger,
//! while the match units keep testing against the true cutoff — "the set of
//! particle interactions performed remains exactly the same."

use crate::assign::NodeGrid;
use anton_geometry::IVec3;

/// Import-region margin (Å) covering deferred migration and group
/// co-location: the farthest an atom can stray from the box its group
/// leader was in at the last migration.
///
/// * `max_speed` — conservative bound on atomic speed (Å/fs); 0.05 Å/fs is
///   ≈ 12× the RMS speed of hydrogen at 300 K.
/// * `dt_fs`, `every` — time step and migration interval.
/// * `group_radius` — largest distance from a group leader to a member.
pub fn import_margin(max_speed: f64, dt_fs: f64, every: u32, group_radius: f64) -> f64 {
    max_speed * dt_fs * every as f64 + group_radius
}

/// Assign every atom to the home box of its *group leader* (first atom of
/// its group). Atoms not covered by any group get their own box.
/// `fracs` are fractional coordinates in `[0,1)³`.
pub fn assign_homes(grid: &NodeGrid, fracs: &[[f64; 3]], groups: &[Vec<u32>]) -> Vec<IVec3> {
    let mut home = Vec::new();
    assign_homes_into(grid, fracs, groups, &mut home);
    home
}

/// Buffer-reusing form of [`assign_homes`] for per-step callers: `out` is
/// cleared and refilled, so steady-state re-homing allocates nothing.
pub fn assign_homes_into(
    grid: &NodeGrid,
    fracs: &[[f64; 3]],
    groups: &[Vec<u32>],
    out: &mut Vec<IVec3>,
) {
    out.clear();
    out.extend(fracs.iter().map(|&f| grid.box_of_frac(f)));
    for g in groups {
        if let Some((&leader, rest)) = g.split_first() {
            let b = out[leader as usize];
            for &m in rest {
                out[m as usize] = b;
            }
        }
    }
}

/// Migration bookkeeping: tracks the step of the last migration and decides
/// when the next one is due.
#[derive(Clone, Copy, Debug)]
pub struct MigrationSchedule {
    pub every: u32,
    last: u64,
}

impl MigrationSchedule {
    pub fn new(every: u32) -> MigrationSchedule {
        assert!(every >= 1);
        MigrationSchedule { every, last: 0 }
    }

    /// True when a migration should run at `step` (and records it).
    pub fn due(&mut self, step: u64) -> bool {
        if step == 0 || step - self.last >= self.every as u64 {
            self.last = step;
            true
        } else {
            false
        }
    }
}

/// How many atoms currently sit outside their nominal home box (diagnostic:
/// grows between migrations, resets after one).
pub fn displaced_count(grid: &NodeGrid, fracs: &[[f64; 3]], homes: &[IVec3]) -> usize {
    fracs
        .iter()
        .zip(homes)
        .filter(|&(f, h)| grid.box_of_frac(*f) != *h)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margin_grows_with_interval() {
        let m4 = import_margin(0.05, 2.5, 4, 1.0);
        let m8 = import_margin(0.05, 2.5, 8, 1.0);
        assert!(m8 > m4);
        assert!((m4 - (0.5 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn groups_are_colocated() {
        let grid = NodeGrid::cubic(4);
        // Leader in box (0,0,0); member strayed into the next box.
        let fracs = vec![[0.05, 0.05, 0.05], [0.30, 0.05, 0.05], [0.80, 0.80, 0.80]];
        let homes = assign_homes(&grid, &fracs, &[vec![0, 1]]);
        assert_eq!(homes[0], homes[1]);
        assert_eq!(homes[0], grid.box_of_frac([0.05, 0.05, 0.05]));
        assert_eq!(homes[2], grid.box_of_frac([0.80, 0.80, 0.80]));
    }

    #[test]
    fn schedule_fires_every_n() {
        let mut s = MigrationSchedule::new(4);
        let fired: Vec<u64> = (0..12).filter(|&t| s.due(t)).collect();
        assert_eq!(fired, vec![0, 4, 8]);
    }

    #[test]
    fn displaced_counting() {
        let grid = NodeGrid::cubic(2);
        let fracs = vec![[0.1, 0.1, 0.1], [0.9, 0.9, 0.9]];
        let homes = assign_homes(&grid, &fracs, &[]);
        assert_eq!(displaced_count(&grid, &fracs, &homes), 0);
        let moved = vec![[0.6, 0.1, 0.1], [0.9, 0.9, 0.9]];
        assert_eq!(displaced_count(&grid, &moved, &homes), 1);
    }
}
