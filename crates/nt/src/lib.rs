//! The NT method and Anton's parallelization machinery (paper §3.2).
//!
//! Anton distributes particles across nodes with a spatial decomposition and
//! parallelizes the range-limited interactions with the *NT method* (Shaw
//! 2005): each node computes interactions between atoms in a **tower**
//! (its home-box column, extended ±R in z) and atoms in a **plate** (a
//! half-neighborhood in its own z-layer). Neither atom of a pair needs to
//! reside on the node that computes it — a "neutral territory" scheme — and
//! the import volume is asymptotically smaller than the traditional
//! half-shell method's.
//!
//! * [`regions`] — the import-region geometry of Figure 3 (analytic volumes
//!   plus voxelizable predicates).
//! * [`match_efficiency`] — Table 3: the fraction of considered tower×plate
//!   pairs that actually need to interact, with and without subboxes.
//! * [`assign`] — the exactly-once assignment of box pairs to nodes used by
//!   the Anton engine, validated against brute force.
//! * [`migration`] — deferred atom migration and constraint-group
//!   co-location (§3.2.4), including the import-region margin bookkeeping.
//! * [`bonds`] — static assignment of bond terms to geometry cores with
//!   worst-case load balancing (§3.2.3).

pub mod assign;
pub mod bonds;
pub mod match_efficiency;
pub mod migration;
pub mod regions;

pub use assign::{NodeGrid, NtAssignment};
pub use match_efficiency::MatchEfficiency;
pub use regions::ImportRegions;
