//! Static assignment of bond terms to geometry cores (paper §3.2.3).
//!
//! Anton assigns every bonded term to a specific GC before the simulation
//! runs; each atom then has a fixed set of "bond destinations" its position
//! is multicast to every step. Static assignment permits load balancing the
//! *worst-case* GC, which sets the bonded-phase critical path. The
//! assignment is recomputed every ~100,000 steps as atoms drift.

use serde::{Deserialize, Serialize};

/// Result of statically assigning weighted terms to the GCs of each node.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GcAssignment {
    /// `(node, gc)` per term, aligned with the input term list.
    pub placement: Vec<(u32, u8)>,
    /// Heaviest GC load (cost units) across the whole machine.
    pub max_load: f64,
    /// Mean GC load over *occupied* nodes.
    pub mean_load: f64,
}

/// Assign terms to GCs: each term is pinned to a node (the home node of its
/// first atom, supplied by the caller) and greedily placed on that node's
/// least-loaded GC in descending cost order (LPT heuristic).
pub fn assign_terms(
    n_nodes: usize,
    gcs_per_node: usize,
    term_node: &[u32],
    term_cost: &[f64],
) -> GcAssignment {
    assert_eq!(term_node.len(), term_cost.len());
    assert!(gcs_per_node >= 1);
    let mut loads = vec![0.0f64; n_nodes * gcs_per_node];
    let mut placement = vec![(0u32, 0u8); term_node.len()];

    //

    let mut order: Vec<usize> = (0..term_node.len()).collect();
    order.sort_by(|&a, &b| {
        term_cost[b]
            .partial_cmp(&term_cost[a])
            .unwrap()
            .then(a.cmp(&b)) // deterministic tiebreak
    });

    for t in order {
        let node = term_node[t] as usize;
        assert!(node < n_nodes, "term node {node} out of range");
        let base = node * gcs_per_node;
        let (gc, _) = loads[base..base + gcs_per_node]
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        loads[base + gc] += term_cost[t];
        placement[t] = (node as u32, gc as u8);
    }

    let occupied: Vec<f64> = loads.iter().copied().filter(|&l| l > 0.0).collect();
    let max_load = loads.iter().copied().fold(0.0, f64::max);
    let mean_load = if occupied.is_empty() {
        0.0
    } else {
        occupied.iter().sum::<f64>() / occupied.len() as f64
    };
    GcAssignment {
        placement,
        max_load,
        mean_load,
    }
}

/// Invert a placement into per-node term index lists: `result[node]` holds
/// the indices of every term assigned to `node`, in ascending term order.
/// This is the static work list a simulated rank executes each step.
pub fn terms_per_node(n_nodes: usize, assignment: &GcAssignment) -> Vec<Vec<u32>> {
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n_nodes];
    for (t, &(node, _gc)) in assignment.placement.iter().enumerate() {
        out[node as usize].push(t as u32);
    }
    out
}

/// The per-atom "bond destination" sets: which `(node, gc)` slots each atom
/// must multicast its position to. Term atom lists come from the caller.
pub fn bond_destinations(
    n_atoms: usize,
    assignment: &GcAssignment,
    term_atoms: &[Vec<u32>],
) -> Vec<Vec<(u32, u8)>> {
    let mut dest: Vec<Vec<(u32, u8)>> = vec![Vec::new(); n_atoms];
    for (t, atoms) in term_atoms.iter().enumerate() {
        let slot = assignment.placement[t];
        for &a in atoms {
            if !dest[a as usize].contains(&slot) {
                dest[a as usize].push(slot);
            }
        }
    }
    dest
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balances_within_one_max_term() {
        // 100 terms of varying cost on one node with 8 GCs: LPT guarantees
        // max ≤ mean + max_single.
        let costs: Vec<f64> = (0..100).map(|i| 1.0 + (i % 7) as f64).collect();
        let nodes = vec![0u32; 100];
        let a = assign_terms(1, 8, &nodes, &costs);
        let total: f64 = costs.iter().sum();
        let ideal = total / 8.0;
        let max_single = 7.0;
        assert!(
            a.max_load <= ideal + max_single,
            "max {} ideal {ideal}",
            a.max_load
        );
    }

    #[test]
    fn respects_node_pinning() {
        let nodes = vec![0u32, 1, 1, 0, 1];
        let costs = vec![1.0; 5];
        let a = assign_terms(2, 4, &nodes, &costs);
        for (t, &(n, _)) in a.placement.iter().enumerate() {
            assert_eq!(n, nodes[t]);
        }
    }

    #[test]
    fn deterministic() {
        let nodes: Vec<u32> = (0..50).map(|i| i % 4).collect();
        let costs: Vec<f64> = (0..50).map(|i| ((i * 37) % 11) as f64 + 1.0).collect();
        let a = assign_terms(4, 8, &nodes, &costs);
        let b = assign_terms(4, 8, &nodes, &costs);
        assert_eq!(a.placement, b.placement);
    }

    #[test]
    fn destinations_deduplicate() {
        let nodes = vec![0u32, 0];
        let costs = vec![1.0, 1.0];
        let a = assign_terms(1, 1, &nodes, &costs);
        // Two terms sharing atom 0, same (node, gc) slot.
        let dest = bond_destinations(2, &a, &[vec![0, 1], vec![0]]);
        assert_eq!(dest[0].len(), 1);
        assert_eq!(dest[1].len(), 1);
    }
}
