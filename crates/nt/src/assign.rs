//! Exactly-once assignment of interactions to nodes under the NT method.
//!
//! The interaction between two atoms may be computed by a node on which
//! neither resides. For boxes `A` and `B`, the computing node takes its
//! (x, y) from one box (whose column is the node's *tower*) and its z from
//! the other (whose layer is the node's *plate*); an asymmetric half-space
//! convention on the xy displacement decides which box plays which role, so
//! every pair is computed exactly once. This module implements that
//! convention and the tower/plate box enumeration engines iterate over.

use anton_geometry::IVec3;
use serde::{Deserialize, Serialize};

/// The grid of nodes (home boxes). Anton's 512-node machine is 8×8×8.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeGrid {
    pub dims: IVec3,
}

impl NodeGrid {
    pub fn new(nx: i32, ny: i32, nz: i32) -> NodeGrid {
        assert!(nx >= 1 && ny >= 1 && nz >= 1);
        NodeGrid {
            dims: IVec3::new(nx, ny, nz),
        }
    }

    pub fn cubic(n: i32) -> NodeGrid {
        NodeGrid::new(n, n, n)
    }

    pub fn node_count(&self) -> usize {
        (self.dims.x * self.dims.y * self.dims.z) as usize
    }

    /// Flatten a (wrapped) box coordinate.
    #[inline]
    pub fn index(&self, c: IVec3) -> usize {
        let w = c.rem_euclid(self.dims);
        ((w.z * self.dims.y + w.y) * self.dims.x + w.x) as usize
    }

    #[inline]
    pub fn coord(&self, index: usize) -> IVec3 {
        let i = index as i32;
        IVec3::new(
            i % self.dims.x,
            (i / self.dims.x) % self.dims.y,
            i / (self.dims.x * self.dims.y),
        )
    }

    /// Home box of a fractional position in `[0,1)³`.
    #[inline]
    pub fn box_of_frac(&self, f: [f64; 3]) -> IVec3 {
        IVec3::new(
            ((f[0] * self.dims.x as f64) as i32).clamp(0, self.dims.x - 1),
            ((f[1] * self.dims.y as f64) as i32).clamp(0, self.dims.y - 1),
            ((f[2] * self.dims.z as f64) as i32).clamp(0, self.dims.z - 1),
        )
    }

    /// Minimum-image displacement of box coordinates along one axis, in
    /// `[-d/2, d/2)` — fixed to the *negative* half on ties so that
    /// `wrap(x) == -wrap(-x)` fails only at the exact half, which the
    /// assignment canonicalizes away by ordering the pair first.
    #[inline]
    pub fn wrap_axis(&self, d: i32, axis: usize) -> i32 {
        let n = match axis {
            0 => self.dims.x,
            1 => self.dims.y,
            _ => self.dims.z,
        };
        let mut w = d.rem_euclid(n);
        if w >= (n + 1) / 2 && n > 1 {
            w -= n;
        }
        w
    }
}

/// The NT assignment for a node grid with tower half-range `zr` and plate
/// half-range `xyr`, in box units (⌈cutoff+margin / box edge⌉).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NtAssignment {
    pub grid: NodeGrid,
    pub zr: i32,
    pub xyr: i32,
}

impl NtAssignment {
    pub fn new(grid: NodeGrid, zr: i32, xyr: i32) -> NtAssignment {
        NtAssignment { grid, zr, xyr }
    }

    /// Choose ranges from a cutoff (plus import margin) and box edges.
    pub fn for_cutoff(grid: NodeGrid, reach: f64, box_edges: [f64; 3]) -> NtAssignment {
        let zr = (reach / box_edges[2]).ceil() as i32;
        let xyr = (reach / box_edges[0].min(box_edges[1])).ceil() as i32;
        NtAssignment { grid, zr, xyr }
    }

    /// The node that computes the interaction of (atoms in) boxes `a` and
    /// `b`. A pure function of the *unordered* pair.
    pub fn node_for_pair(&self, a: IVec3, b: IVec3) -> IVec3 {
        // Canonical order so ties in the wrap convention cannot produce two
        // different answers for (a,b) vs (b,a).
        let (a, b) = if (a.x, a.y, a.z) <= (b.x, b.y, b.z) {
            (a, b)
        } else {
            (b, a)
        };
        let dx = self.grid.wrap_axis(b.x - a.x, 0);
        let dy = self.grid.wrap_axis(b.y - a.y, 1);
        let dz = self.grid.wrap_axis(b.z - a.z, 2);
        if dx == 0 && dy == 0 {
            // Same column: the lower atom (by wrapped dz) hosts the plate.
            if dz >= 0 {
                IVec3::new(a.x, a.y, a.z).rem_euclid(self.grid.dims)
            } else {
                IVec3::new(a.x, a.y, b.z).rem_euclid(self.grid.dims)
            }
        } else if dx > 0 || (dx == 0 && dy > 0) {
            // b lies in the half-plate relative to a's column.
            IVec3::new(a.x, a.y, b.z).rem_euclid(self.grid.dims)
        } else {
            IVec3::new(b.x, b.y, a.z).rem_euclid(self.grid.dims)
        }
    }

    /// Boxes of this node's tower (home column ± zr), deduplicated under
    /// wrapping, home box included.
    pub fn tower_boxes(&self, node: IVec3) -> Vec<IVec3> {
        let mut out = Vec::new();
        for dz in -self.zr..=self.zr {
            let c = IVec3::new(node.x, node.y, node.z + dz).rem_euclid(self.grid.dims);
            if !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }

    /// Boxes of this node's plate: home box plus the half-neighborhood in
    /// the node's layer, deduplicated under wrapping.
    pub fn plate_boxes(&self, node: IVec3) -> Vec<IVec3> {
        let mut out = vec![node.rem_euclid(self.grid.dims)];
        for dx in -self.xyr..=self.xyr {
            for dy in -self.xyr..=self.xyr {
                if dx == 0 && dy == 0 {
                    continue;
                }
                if dx > 0 || (dx == 0 && dy > 0) {
                    let c = IVec3::new(node.x + dx, node.y + dy, node.z).rem_euclid(self.grid.dims);
                    if !out.contains(&c) {
                        out.push(c);
                    }
                }
            }
        }
        out
    }

    /// Import-region box counts `(tower_import, plate_import)` excluding the
    /// home box (used by the communication model).
    pub fn import_counts(&self, node: IVec3) -> (usize, usize) {
        let home = node.rem_euclid(self.grid.dims);
        let t = self
            .tower_boxes(node)
            .into_iter()
            .filter(|&c| c != home)
            .count();
        let p = self
            .plate_boxes(node)
            .into_iter()
            .filter(|&c| c != home)
            .count();
        (t, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_geometry::{PeriodicBox, Vec3};
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    #[test]
    fn node_for_pair_is_symmetric() {
        let nt = NtAssignment::new(NodeGrid::cubic(8), 2, 2);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        for _ in 0..2000 {
            let a = IVec3::new(
                rng.gen_range(0..8),
                rng.gen_range(0..8),
                rng.gen_range(0..8),
            );
            let b = IVec3::new(
                rng.gen_range(0..8),
                rng.gen_range(0..8),
                rng.gen_range(0..8),
            );
            assert_eq!(
                nt.node_for_pair(a, b),
                nt.node_for_pair(b, a),
                "{a:?} {b:?}"
            );
        }
    }

    #[test]
    fn assigned_node_hosts_tower_and_plate() {
        // For in-range pairs, the chosen node's tower must contain one box
        // and its plate the other.
        let nt = NtAssignment::new(NodeGrid::cubic(8), 2, 2);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        for _ in 0..3000 {
            let a = IVec3::new(
                rng.gen_range(0..8),
                rng.gen_range(0..8),
                rng.gen_range(0..8),
            );
            let db = IVec3::new(
                rng.gen_range(-2..=2),
                rng.gen_range(-2..=2),
                rng.gen_range(-2..=2),
            );
            let b = (a + db).rem_euclid(IVec3::new(8, 8, 8));
            let n = nt.node_for_pair(a, b);
            let tower = nt.tower_boxes(n);
            let plate = nt.plate_boxes(n);
            let ok = (tower.contains(&a) && plate.contains(&b))
                || (tower.contains(&b) && plate.contains(&a));
            assert!(
                ok,
                "pair {a:?},{b:?} -> node {n:?} tower {tower:?} plate {plate:?}"
            );
        }
    }

    /// The crucial property: enumerating tower×plate pairs on every node,
    /// filtered by `node_for_pair`, visits every within-cutoff atom pair
    /// exactly once — validated against brute force.
    #[test]
    fn covers_every_pair_exactly_once() {
        let grid = NodeGrid::cubic(4);
        let edge = 24.0; // box edge 6 Å per node box
        let cutoff = 7.5; // spans > 1 box
        let pbox = PeriodicBox::cubic(edge);
        let nt = NtAssignment::for_cutoff(grid, cutoff, [6.0, 6.0, 6.0]);
        assert_eq!(nt.zr, 2);

        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let n_atoms = 300;
        let pos: Vec<Vec3> = (0..n_atoms)
            .map(|_| {
                Vec3::new(
                    rng.gen::<f64>() * edge,
                    rng.gen::<f64>() * edge,
                    rng.gen::<f64>() * edge,
                )
            })
            .collect();
        let box_of: Vec<IVec3> = pos
            .iter()
            .map(|p| grid.box_of_frac([p.x / edge, p.y / edge, p.z / edge]))
            .collect();

        // Atoms per box.
        let mut atoms_in: Vec<Vec<u32>> = vec![Vec::new(); grid.node_count()];
        for (i, b) in box_of.iter().enumerate() {
            atoms_in[grid.index(*b)].push(i as u32);
        }

        let mut visited: Vec<(u32, u32)> = Vec::new();
        for node_idx in 0..grid.node_count() {
            let node = grid.coord(node_idx);
            let tower = nt.tower_boxes(node);
            let plate = nt.plate_boxes(node);
            for tb in &tower {
                for pb in &plate {
                    for &i in &atoms_in[grid.index(*tb)] {
                        for &j in &atoms_in[grid.index(*pb)] {
                            if i == j {
                                continue;
                            }
                            // Same-box pairs appear as (tower home, plate
                            // home); avoid double visits within the node by
                            // ordering.
                            if tb == pb && i > j {
                                continue;
                            }
                            if nt.node_for_pair(box_of[i as usize], box_of[j as usize]) != node {
                                continue;
                            }
                            // Distinct (tower, plate) box roles can both be
                            // enumerated when both boxes sit in tower∩plate
                            // (the home box): only counted once above.
                            if pbox.dist2(pos[i as usize], pos[j as usize]) <= cutoff * cutoff {
                                visited.push((i.min(j), i.max(j)));
                            }
                        }
                    }
                }
            }
        }
        visited.sort_unstable();

        let mut expected: Vec<(u32, u32)> = Vec::new();
        for i in 0..n_atoms as u32 {
            for j in (i + 1)..n_atoms as u32 {
                if pbox.dist2(pos[i as usize], pos[j as usize]) <= cutoff * cutoff {
                    expected.push((i, j));
                }
            }
        }
        expected.sort_unstable();

        // No duplicates.
        let unique: HashSet<_> = visited.iter().collect();
        assert_eq!(unique.len(), visited.len(), "pairs visited more than once");
        assert_eq!(
            visited, expected,
            "NT enumeration disagrees with brute force"
        );
    }

    #[test]
    fn import_counts_match_region_arithmetic() {
        let nt = NtAssignment::new(NodeGrid::cubic(8), 2, 2);
        let (t, p) = nt.import_counts(IVec3::new(3, 3, 3));
        assert_eq!(t, 4); // ±2 boxes in z
                          // Half of the 5×5−1 ring = 12 boxes.
        assert_eq!(p, 12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// For random grids, node_for_pair is a pure function of the
        /// unordered pair and always lands on a node whose tower/plate hold
        /// the two boxes (for pairs within range).
        #[test]
        fn assignment_invariants(
            gx in 1i32..6, gy in 1i32..6, gz in 1i32..6,
            ax in 0i32..6, ay in 0i32..6, az in 0i32..6,
            dx in -2i32..3, dy in -2i32..3, dz in -2i32..3,
        ) {
            let grid = NodeGrid::new(gx, gy, gz);
            let nt = NtAssignment::new(grid, 2, 2);
            let a = IVec3::new(ax % gx, ay % gy, az % gz);
            let b = (a + IVec3::new(dx, dy, dz)).rem_euclid(grid.dims);
            let n1 = nt.node_for_pair(a, b);
            let n2 = nt.node_for_pair(b, a);
            prop_assert_eq!(n1, n2, "unordered-pair symmetry");
            let tower = nt.tower_boxes(n1);
            let plate = nt.plate_boxes(n1);
            prop_assert!(
                (tower.contains(&a) && plate.contains(&b))
                    || (tower.contains(&b) && plate.contains(&a)),
                "node {:?} does not host pair ({:?}, {:?})", n1, a, b
            );
        }

        /// Tower and plate only overlap at the home box.
        #[test]
        fn tower_plate_overlap_is_home_only(
            g in 3i32..8, zr in 1i32..3, xyr in 1i32..3,
            nx in 0i32..8, ny in 0i32..8, nz in 0i32..8,
        ) {
            let grid = NodeGrid::cubic(g);
            let nt = NtAssignment::new(grid, zr, xyr);
            let node = IVec3::new(nx % g, ny % g, nz % g);
            let tower = nt.tower_boxes(node);
            let plate = nt.plate_boxes(node);
            for t in &tower {
                for p in &plate {
                    if t == p {
                        prop_assert_eq!(*t, node.rem_euclid(grid.dims));
                    }
                }
            }
        }
    }
}
