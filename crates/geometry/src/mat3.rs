//! 3×3 matrices: just enough linear algebra for inertia tensors, rotation
//! fitting (Kabsch, in `anton-analysis`) and the order-parameter tensor.

use crate::Vec3;
use serde::{Deserialize, Serialize};

/// A row-major 3×3 matrix of `f64`.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Mat3(pub [[f64; 3]; 3]);

impl Mat3 {
    pub const ZERO: Mat3 = Mat3([[0.0; 3]; 3]);
    pub const IDENTITY: Mat3 = Mat3([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]);

    /// Outer product `a bᵀ`.
    pub fn outer(a: Vec3, b: Vec3) -> Mat3 {
        let a = a.to_array();
        let b = b.to_array();
        let mut m = [[0.0; 3]; 3];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = a[i] * b[j];
            }
        }
        Mat3(m)
    }

    pub fn transpose(self) -> Mat3 {
        let m = self.0;
        Mat3([
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        ])
    }

    pub fn mul_mat(self, o: Mat3) -> Mat3 {
        let mut r = [[0.0; 3]; 3];
        for (i, row) in r.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (0..3).map(|k| self.0[i][k] * o.0[k][j]).sum();
            }
        }
        Mat3(r)
    }

    pub fn mul_vec(self, v: Vec3) -> Vec3 {
        let a = v.to_array();
        Vec3::new(
            self.0[0][0] * a[0] + self.0[0][1] * a[1] + self.0[0][2] * a[2],
            self.0[1][0] * a[0] + self.0[1][1] * a[1] + self.0[1][2] * a[2],
            self.0[2][0] * a[0] + self.0[2][1] * a[1] + self.0[2][2] * a[2],
        )
    }

    // Not `impl Add`: keeping matrix ops as named methods mirrors
    // `mul_mat`/`mul_vec` and avoids operator overloading in hot paths.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: Mat3) -> Mat3 {
        let mut r = self.0;
        for (i, row) in r.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v += o.0[i][j];
            }
        }
        Mat3(r)
    }

    pub fn scale(self, s: f64) -> Mat3 {
        let mut r = self.0;
        for row in r.iter_mut() {
            for v in row.iter_mut() {
                *v *= s;
            }
        }
        Mat3(r)
    }

    pub fn det(self) -> f64 {
        let m = self.0;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    pub fn trace(self) -> f64 {
        self.0[0][0] + self.0[1][1] + self.0[2][2]
    }

    /// Eigen-decomposition of a *symmetric* matrix by cyclic Jacobi rotation.
    /// Returns `(eigenvalues, eigenvectors)` with eigenvectors as the columns
    /// of the returned matrix, sorted by descending eigenvalue.
    // Jacobi rotations address row/column pairs (p, q) of two arrays at
    // once; index loops are clearer than split_at_mut acrobatics here.
    #[allow(clippy::needless_range_loop)]
    pub fn sym_eigen(self) -> ([f64; 3], Mat3) {
        let mut a = self.0;
        let mut v = Mat3::IDENTITY.0;
        for _sweep in 0..64 {
            let off = a[0][1] * a[0][1] + a[0][2] * a[0][2] + a[1][2] * a[1][2];
            if off < 1e-28 {
                break;
            }
            for p in 0..2 {
                for q in (p + 1)..3 {
                    if a[p][q].abs() < 1e-300 {
                        continue;
                    }
                    let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    for k in 0..3 {
                        let akp = a[k][p];
                        let akq = a[k][q];
                        a[k][p] = c * akp - s * akq;
                        a[k][q] = s * akp + c * akq;
                    }
                    for k in 0..3 {
                        let apk = a[p][k];
                        let aqk = a[q][k];
                        a[p][k] = c * apk - s * aqk;
                        a[q][k] = s * apk + c * aqk;
                    }
                    for k in 0..3 {
                        let vkp = v[k][p];
                        let vkq = v[k][q];
                        v[k][p] = c * vkp - s * vkq;
                        v[k][q] = s * vkp + c * vkq;
                    }
                }
            }
        }
        let mut pairs = [(a[0][0], 0usize), (a[1][1], 1), (a[2][2], 2)];
        pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));
        let vals = [pairs[0].0, pairs[1].0, pairs[2].0];
        let mut vecs = [[0.0; 3]; 3];
        for (newcol, &(_, oldcol)) in pairs.iter().enumerate() {
            for k in 0..3 {
                vecs[k][newcol] = v[k][oldcol];
            }
        }
        (vals, Mat3(vecs))
    }

    pub fn col(self, j: usize) -> Vec3 {
        Vec3::new(self.0[0][j], self.0[1][j], self.0[2][j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_identity() {
        let m = Mat3([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 10.0]]);
        assert_eq!(m.mul_mat(Mat3::IDENTITY), m);
        assert_eq!(
            Mat3::IDENTITY.mul_vec(Vec3::new(1.0, 2.0, 3.0)),
            Vec3::new(1.0, 2.0, 3.0)
        );
    }

    #[test]
    fn det_of_singular_is_zero() {
        let m = Mat3([[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 1.0]]);
        assert!(m.det().abs() < 1e-12);
    }

    #[test]
    fn sym_eigen_diagonal() {
        let m = Mat3([[3.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 2.0]]);
        let (vals, _) = m.sym_eigen();
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] - 2.0).abs() < 1e-12);
        assert!((vals[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sym_eigen_reconstructs_matrix() {
        let m = Mat3([[2.0, 1.0, 0.5], [1.0, 3.0, 0.2], [0.5, 0.2, 1.5]]);
        let (vals, vecs) = m.sym_eigen();
        // Reconstruct sum λ_i v_i v_iᵀ.
        let mut r = Mat3::ZERO;
        for (i, &l) in vals.iter().enumerate() {
            let u = vecs.col(i);
            r = r.add(Mat3::outer(u, u).scale(l));
        }
        for i in 0..3 {
            for j in 0..3 {
                assert!((r.0[i][j] - m.0[i][j]).abs() < 1e-10, "({i},{j})");
            }
        }
    }
}
