//! Volume integration of spatial predicates.
//!
//! Paper Figure 3 compares the *import regions* of several parallelization
//! methods. We measure those regions numerically: a region is an arbitrary
//! predicate over ℝ³ and we integrate its volume over a bounding domain with
//! either a regular subdivision (deterministic, used in tests) or Monte Carlo
//! sampling (used for quick estimates).

use crate::Vec3;
use rand::{Rng, SeedableRng};

/// Axis-aligned bounding domain for integration.
#[derive(Clone, Copy, Debug)]
pub struct Domain {
    pub lo: Vec3,
    pub hi: Vec3,
}

impl Domain {
    pub fn new(lo: Vec3, hi: Vec3) -> Domain {
        assert!(lo.x < hi.x && lo.y < hi.y && lo.z < hi.z);
        Domain { lo, hi }
    }

    /// A cube of half-extent `h` centered at the origin.
    pub fn centered_cube(h: f64) -> Domain {
        Domain::new(Vec3::splat(-h), Vec3::splat(h))
    }

    pub fn volume(&self) -> f64 {
        let d = self.hi - self.lo;
        d.x * d.y * d.z
    }
}

/// Integrate the volume of `{p ∈ domain : pred(p)}` on a regular grid with
/// `n` samples per axis (midpoint rule). Deterministic.
pub fn grid_volume(domain: Domain, n: usize, pred: impl Fn(Vec3) -> bool) -> f64 {
    assert!(n > 0);
    let d = domain.hi - domain.lo;
    let step = Vec3::new(d.x / n as f64, d.y / n as f64, d.z / n as f64);
    let mut inside = 0u64;
    for iz in 0..n {
        let z = domain.lo.z + (iz as f64 + 0.5) * step.z;
        for iy in 0..n {
            let y = domain.lo.y + (iy as f64 + 0.5) * step.y;
            for ix in 0..n {
                let x = domain.lo.x + (ix as f64 + 0.5) * step.x;
                if pred(Vec3::new(x, y, z)) {
                    inside += 1;
                }
            }
        }
    }
    domain.volume() * inside as f64 / (n as u64).pow(3) as f64
}

/// Monte Carlo volume of `{p ∈ domain : pred(p)}` with a fixed seed.
pub fn mc_volume(domain: Domain, samples: usize, seed: u64, pred: impl Fn(Vec3) -> bool) -> f64 {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let d = domain.hi - domain.lo;
    let mut inside = 0u64;
    for _ in 0..samples {
        let p = Vec3::new(
            domain.lo.x + rng.gen::<f64>() * d.x,
            domain.lo.y + rng.gen::<f64>() * d.y,
            domain.lo.z + rng.gen::<f64>() * d.z,
        );
        if pred(p) {
            inside += 1;
        }
    }
    domain.volume() * inside as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_volume_grid() {
        let r: f64 = 2.0;
        let v = grid_volume(Domain::centered_cube(2.5), 160, |p| p.norm2() <= r * r);
        let exact = 4.0 / 3.0 * std::f64::consts::PI * r.powi(3);
        assert!((v - exact).abs() / exact < 0.01, "v={v} exact={exact}");
    }

    #[test]
    fn sphere_volume_mc() {
        let r: f64 = 2.0;
        let v = mc_volume(Domain::centered_cube(2.5), 200_000, 11, |p| {
            p.norm2() <= r * r
        });
        let exact = 4.0 / 3.0 * std::f64::consts::PI * r.powi(3);
        assert!((v - exact).abs() / exact < 0.03, "v={v} exact={exact}");
    }

    #[test]
    fn box_volume_exact() {
        let v = grid_volume(Domain::centered_cube(2.0), 64, |p| {
            p.x.abs() <= 1.0 && p.y.abs() <= 1.0 && p.z.abs() <= 1.0
        });
        assert!((v - 8.0).abs() < 0.1);
    }
}
