//! Geometric substrate for the Anton reproduction.
//!
//! Everything here is decomposition-agnostic plumbing shared by the reference
//! engine, the NT-method crate and the Anton engine:
//!
//! * [`Vec3`] / [`IVec3`] / [`Mat3`] — small dense linear algebra, hand
//!   written (no external linear-algebra dependency).
//! * [`PeriodicBox`] — orthorhombic periodic cell with minimum-image
//!   displacement, fractional/Cartesian conversion and wrapping.
//! * [`CellGrid`] — a classic cell list over a periodic box; used by the
//!   reference engine's pair list and by brute-force validation of the NT
//!   method.
//! * [`voxel`] — numeric volume integration of arbitrary spatial predicates,
//!   used to measure the import-region volumes of paper Figure 3.

pub mod cells;
pub mod mat3;
pub mod pbc;
pub mod tiles;
pub mod vec3;
pub mod voxel;

pub use cells::{Buckets, CellGrid};
pub use mat3::Mat3;
pub use pbc::PeriodicBox;
pub use tiles::{PosTiles, TileView};
pub use vec3::{IVec3, Vec3};
