//! Small dense vectors.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A 3-vector of `f64`, used throughout the floating-point reference paths.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

/// A 3-vector of `i32`, used for lattice/node/cell coordinates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct IVec3 {
    pub x: i32,
    pub y: i32,
    pub z: i32,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Vec3 {
        Vec3 { x, y, z }
    }

    #[inline]
    pub fn splat(v: f64) -> Vec3 {
        Vec3::new(v, v, v)
    }

    #[inline]
    pub fn from_array(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }

    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Unit vector; returns `None` for (near-)zero input instead of emitting
    /// NaNs into a force computation.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        (n > 1e-12).then(|| self / n)
    }

    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl IVec3 {
    pub const ZERO: IVec3 = IVec3 { x: 0, y: 0, z: 0 };

    #[inline]
    pub const fn new(x: i32, y: i32, z: i32) -> IVec3 {
        IVec3 { x, y, z }
    }

    #[inline]
    pub fn to_array(self) -> [i32; 3] {
        [self.x, self.y, self.z]
    }

    /// Component-wise Euclidean (always-positive) remainder, for wrapping
    /// lattice coordinates onto a periodic grid of the given dimensions.
    #[inline]
    pub fn rem_euclid(self, dims: IVec3) -> IVec3 {
        IVec3::new(
            self.x.rem_euclid(dims.x),
            self.y.rem_euclid(dims.y),
            self.z.rem_euclid(dims.z),
        )
    }
}

impl Add for IVec3 {
    type Output = IVec3;
    #[inline]
    fn add(self, o: IVec3) -> IVec3 {
        IVec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for IVec3 {
    type Output = IVec3;
    #[inline]
    fn sub(self, o: IVec3) -> IVec3 {
        IVec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_is_right_handed() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn norm_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 12.0);
        assert_eq!(v.norm(), 13.0);
        let u = v.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-15);
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn ivec_rem_euclid_wraps_negative() {
        let v = IVec3::new(-1, 8, 3).rem_euclid(IVec3::new(8, 8, 8));
        assert_eq!(v, IVec3::new(7, 0, 3));
    }
}
