//! Cell lists over a periodic box.
//!
//! The reference engine builds its pair list from this grid; the NT-method
//! validation uses it as the ground truth "all pairs within the cutoff".

use crate::{IVec3, PeriodicBox, Vec3};

/// Reusable counting-sort bucketing of items by a small integer key (a cell
/// index, a node-box index, …). Deterministic: items keep their input order
/// within a bucket, and rebuilding with the same keys reproduces the same
/// layout bit for bit. Buffers are retained across [`Buckets::rebuild`]
/// calls so per-step re-bucketing allocates nothing in steady state.
#[derive(Clone, Debug, Default)]
pub struct Buckets {
    /// Item indices sorted by bucket, addressed through `starts`.
    order: Vec<u32>,
    /// `starts[b]..starts[b + 1]` spans bucket `b` inside `order`.
    starts: Vec<u32>,
    cursor: Vec<u32>,
}

impl Buckets {
    /// Re-bucket `n_items` items into `n_buckets` buckets; `key(i)` must
    /// return a bucket index `< n_buckets` for every `i < n_items`.
    pub fn rebuild(&mut self, n_buckets: usize, n_items: usize, key: impl Fn(usize) -> usize) {
        self.starts.clear();
        self.starts.resize(n_buckets + 1, 0);
        for i in 0..n_items {
            self.starts[key(i) + 1] += 1;
        }
        for b in 1..self.starts.len() {
            self.starts[b] += self.starts[b - 1];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.starts);
        self.order.clear();
        self.order.resize(n_items, 0);
        for i in 0..n_items {
            let b = key(i);
            self.order[self.cursor[b] as usize] = i as u32;
            self.cursor[b] += 1;
        }
    }

    /// Number of buckets in the current layout.
    pub fn bucket_count(&self) -> usize {
        self.starts.len().saturating_sub(1)
    }

    /// Items in one bucket, in input order.
    #[inline]
    pub fn members(&self, bucket: usize) -> &[u32] {
        let s = self.starts[bucket] as usize;
        let e = self.starts[bucket + 1] as usize;
        &self.order[s..e]
    }

    /// Item count of one bucket.
    #[inline]
    pub fn count(&self, bucket: usize) -> usize {
        (self.starts[bucket + 1] - self.starts[bucket]) as usize
    }
}

/// A uniform cell decomposition of a periodic box with cell edges ≥ some
/// interaction cutoff, so that all neighbors of a particle lie in the 27
/// surrounding cells.
#[derive(Clone, Debug)]
pub struct CellGrid {
    pub pbox: PeriodicBox,
    dims: IVec3,
    cell_of: Vec<u32>,
    buckets: Buckets,
}

impl CellGrid {
    /// Build a grid whose cells are at least `min_cell` Å on a side
    /// (usually the cutoff plus a pair-list margin).
    pub fn build(pbox: &PeriodicBox, positions: &[Vec3], min_cell: f64) -> CellGrid {
        assert!(min_cell > 0.0);
        let e = pbox.edge();
        let dims = IVec3::new(
            ((e.x / min_cell).floor() as i32).max(1),
            ((e.y / min_cell).floor() as i32).max(1),
            ((e.z / min_cell).floor() as i32).max(1),
        );
        let ncells = (dims.x * dims.y * dims.z) as usize;

        let mut cell_of = Vec::with_capacity(positions.len());
        for &p in positions {
            let f = pbox.to_frac(p);
            let c = IVec3::new(
                ((f.x * dims.x as f64) as i32).clamp(0, dims.x - 1),
                ((f.y * dims.y as f64) as i32).clamp(0, dims.y - 1),
                ((f.z * dims.z as f64) as i32).clamp(0, dims.z - 1),
            );
            cell_of.push(Self::cell_index(dims, c));
        }
        let mut buckets = Buckets::default();
        buckets.rebuild(ncells, positions.len(), |i| cell_of[i] as usize);
        CellGrid {
            pbox: *pbox,
            dims,
            cell_of,
            buckets,
        }
    }

    #[inline]
    fn cell_index(dims: IVec3, c: IVec3) -> u32 {
        ((c.z * dims.y + c.y) * dims.x + c.x) as u32
    }

    #[inline]
    pub fn dims(&self) -> IVec3 {
        self.dims
    }

    #[inline]
    pub fn cell_count(&self) -> usize {
        (self.dims.x * self.dims.y * self.dims.z) as usize
    }

    /// Particles in one cell.
    pub fn cell_members(&self, cell: u32) -> &[u32] {
        self.buckets.members(cell as usize)
    }

    /// The cell a particle was binned into.
    #[inline]
    pub fn cell_of(&self, particle: usize) -> u32 {
        self.cell_of[particle]
    }

    /// Visit every unordered particle pair within `cutoff` exactly once,
    /// using a half stencil over neighbor cells (Newton's third law).
    pub fn for_each_pair_within(
        &self,
        positions: &[Vec3],
        cutoff: f64,
        mut f: impl FnMut(usize, usize, Vec3, f64),
    ) {
        let c2 = cutoff * cutoff;
        let dims = self.dims;
        // Half stencil: the 13 lexicographically positive neighbor offsets;
        // together with in-cell pairs this visits each unordered pair once.
        let mut stencil = Vec::with_capacity(13);
        for dz in -1i32..=1 {
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    if (dz, dy, dx) > (0, 0, 0) {
                        stencil.push(IVec3::new(dx, dy, dz));
                    }
                }
            }
        }
        debug_assert_eq!(stencil.len(), 13);

        // With very small grids (< 3 cells on an axis) the stencil would visit
        // the same neighbor twice; fall back to all-pairs in that case.
        if dims.x < 3 || dims.y < 3 || dims.z < 3 {
            for i in 0..positions.len() {
                for j in (i + 1)..positions.len() {
                    let d = self.pbox.min_image(positions[i], positions[j]);
                    let r2 = d.norm2();
                    if r2 <= c2 {
                        f(i, j, d, r2);
                    }
                }
            }
            return;
        }

        for cz in 0..dims.z {
            for cy in 0..dims.y {
                for cx in 0..dims.x {
                    let c = IVec3::new(cx, cy, cz);
                    let ci = Self::cell_index(dims, c);
                    let members = self.cell_members(ci);
                    // Pairs within the cell.
                    for (a, &i) in members.iter().enumerate() {
                        for &j in &members[a + 1..] {
                            let d = self
                                .pbox
                                .min_image(positions[i as usize], positions[j as usize]);
                            let r2 = d.norm2();
                            if r2 <= c2 {
                                f(i as usize, j as usize, d, r2);
                            }
                        }
                    }
                    // Pairs against the half stencil.
                    for off in &stencil {
                        let n = (c + *off).rem_euclid(dims);
                        let ni = Self::cell_index(dims, n);
                        for &i in members {
                            for &j in self.cell_members(ni) {
                                let d = self
                                    .pbox
                                    .min_image(positions[i as usize], positions[j as usize]);
                                let r2 = d.norm2();
                                if r2 <= c2 {
                                    f(i as usize, j as usize, d, r2);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn brute_force_pairs(pbox: &PeriodicBox, pos: &[Vec3], cutoff: f64) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..pos.len() {
            for j in (i + 1)..pos.len() {
                if pbox.dist2(pos[i], pos[j]) <= cutoff * cutoff {
                    out.push((i, j));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn buckets_preserve_input_order_and_cover_all_items() {
        let keys = [2usize, 0, 2, 1, 0, 2, 3];
        let mut b = Buckets::default();
        b.rebuild(4, keys.len(), |i| keys[i]);
        assert_eq!(b.bucket_count(), 4);
        assert_eq!(b.members(0), &[1, 4]);
        assert_eq!(b.members(1), &[3]);
        assert_eq!(b.members(2), &[0, 2, 5]);
        assert_eq!(b.members(3), &[6]);
        assert_eq!((0..4).map(|c| b.count(c)).sum::<usize>(), keys.len());
        // Rebuilding with fewer buckets reuses the buffers and stays exact.
        b.rebuild(2, 4, |i| i % 2);
        assert_eq!(b.members(0), &[0, 2]);
        assert_eq!(b.members(1), &[1, 3]);
    }

    #[test]
    fn matches_brute_force_on_random_points() {
        let pbox = PeriodicBox::cubic(30.0);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let pos: Vec<Vec3> = (0..400)
            .map(|_| {
                Vec3::new(
                    rng.gen::<f64>() * 30.0,
                    rng.gen::<f64>() * 30.0,
                    rng.gen::<f64>() * 30.0,
                )
            })
            .collect();
        let cutoff = 6.5;
        let grid = CellGrid::build(&pbox, &pos, cutoff);
        let mut got = Vec::new();
        grid.for_each_pair_within(&pos, cutoff, |i, j, _d, _r2| {
            got.push((i.min(j), i.max(j)));
        });
        got.sort_unstable();
        assert_eq!(got, brute_force_pairs(&pbox, &pos, cutoff));
    }

    #[test]
    fn small_box_falls_back_to_all_pairs() {
        let pbox = PeriodicBox::cubic(8.0);
        let pos = vec![
            Vec3::new(0.5, 0.5, 0.5),
            Vec3::new(7.5, 7.5, 7.5), // 1.73 Å away through the corner
            Vec3::new(4.0, 4.0, 4.0),
        ];
        let grid = CellGrid::build(&pbox, &pos, 6.0);
        let mut got = Vec::new();
        grid.for_each_pair_within(&pos, 2.0, |i, j, _d, _r2| got.push((i, j)));
        assert_eq!(got, vec![(0, 1)]);
    }

    #[test]
    fn pair_count_matches_density_estimate() {
        // Uniform density: expected pairs ≈ N^2/2 * (4/3 π r^3 / V).
        let pbox = PeriodicBox::cubic(40.0);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        let n = 2000;
        let pos: Vec<Vec3> = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen::<f64>() * 40.0,
                    rng.gen::<f64>() * 40.0,
                    rng.gen::<f64>() * 40.0,
                )
            })
            .collect();
        let cutoff = 9.0;
        let grid = CellGrid::build(&pbox, &pos, cutoff);
        let mut count = 0usize;
        grid.for_each_pair_within(&pos, cutoff, |_, _, _, _| count += 1);
        let expected = (n * n) as f64 / 2.0 * (4.0 / 3.0) * std::f64::consts::PI * cutoff.powi(3)
            / pbox.volume();
        let rel = (count as f64 - expected).abs() / expected;
        assert!(rel < 0.05, "count {count} vs expected {expected}");
    }
}
