//! Structure-of-arrays position/charge tiles for the batched match stage.
//!
//! The HTIS streams *tiles* of particle data — contiguous per-axis
//! coordinate arrays plus per-particle kernel parameters — through its
//! match units. [`PosTiles`] is that layout in software: one flat SoA pool
//! segmented into tiles (one tile per subbox / cell), rebuilt every force
//! evaluation from a bucketed particle index without allocating in steady
//! state. Coordinates are stored as the *raw* signed 32-bit box-fraction
//! bits, so the match stage can form minimum-image deltas with plain
//! wrapping subtraction and never touches floating point.

/// A read-only view of one tile: parallel slices over the tile's slots.
#[derive(Clone, Copy, Debug)]
pub struct TileView<'a> {
    /// Raw per-axis box-fraction coordinates (signed Q31 bits).
    pub x: &'a [i32],
    pub y: &'a [i32],
    pub z: &'a [i32],
    /// Per-slot charge.
    pub q: &'a [f64],
    /// Global particle index of each slot.
    pub atom: &'a [u32],
}

impl TileView<'_> {
    #[inline]
    pub fn len(&self) -> usize {
        self.atom.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.atom.is_empty()
    }
}

/// SoA position/charge tiles over a set of particles, segmented by tile.
///
/// Buffers are retained across [`PosTiles::rebuild`] calls; rebuilding with
/// the same membership and fetch results reproduces the same layout bit
/// for bit (slot order is the membership order handed in).
#[derive(Clone, Debug, Default)]
pub struct PosTiles {
    x: Vec<i32>,
    y: Vec<i32>,
    z: Vec<i32>,
    q: Vec<f64>,
    atom: Vec<u32>,
    /// `starts[t]..starts[t + 1]` spans tile `t` inside the flat arrays.
    starts: Vec<u32>,
}

impl PosTiles {
    /// Refill the tiles: one tile per `members` item (its slice lists the
    /// particles of that tile, in slot order), `fetch` supplies each
    /// particle's raw coordinates and charge.
    pub fn rebuild<'a>(
        &mut self,
        members: impl Iterator<Item = &'a [u32]>,
        mut fetch: impl FnMut(u32) -> ([i32; 3], f64),
    ) {
        self.x.clear();
        self.y.clear();
        self.z.clear();
        self.q.clear();
        self.atom.clear();
        self.starts.clear();
        self.starts.push(0);
        for tile in members {
            for &p in tile {
                let (c, q) = fetch(p);
                self.x.push(c[0]);
                self.y.push(c[1]);
                self.z.push(c[2]);
                self.q.push(q);
                self.atom.push(p);
            }
            self.starts.push(self.atom.len() as u32);
        }
    }

    /// Overwrite every slot's coordinates from `fetch`, keeping the tile
    /// membership, slot order, charges and segmentation untouched. This is
    /// the per-step refresh of a persistent match cache: atoms keep their
    /// slots between pair-list rebuilds, only their raw fraction bits move.
    pub fn refresh_positions(&mut self, mut fetch: impl FnMut(u32) -> [i32; 3]) {
        for (slot, &p) in self.atom.iter().enumerate() {
            let c = fetch(p);
            self.x[slot] = c[0];
            self.y[slot] = c[1];
            self.z[slot] = c[2];
        }
    }

    /// Number of tiles in the current layout.
    #[inline]
    pub fn tile_count(&self) -> usize {
        self.starts.len().saturating_sub(1)
    }

    /// First flat slot of tile `t` (slot indices returned here address the
    /// whole pool, e.g. via [`Self::raw_at`]).
    #[inline]
    pub fn tile_start(&self, t: usize) -> usize {
        self.starts[t] as usize
    }

    /// Raw coordinates of one flat slot.
    #[inline]
    pub fn raw_at(&self, slot: u32) -> [i32; 3] {
        let s = slot as usize;
        [self.x[s], self.y[s], self.z[s]]
    }

    /// Total slots across all tiles.
    #[inline]
    pub fn len(&self) -> usize {
        self.atom.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.atom.is_empty()
    }

    /// View of one tile's parallel slices.
    #[inline]
    pub fn tile(&self, t: usize) -> TileView<'_> {
        let s = self.starts[t] as usize;
        let e = self.starts[t + 1] as usize;
        TileView {
            x: &self.x[s..e],
            y: &self.y[s..e],
            z: &self.z[s..e],
            q: &self.q[s..e],
            atom: &self.atom[s..e],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebuild_partitions_members_in_order() {
        let mut tiles = PosTiles::default();
        let members: [&[u32]; 3] = [&[2, 0], &[], &[1]];
        tiles.rebuild(members.into_iter(), |p| {
            ([p as i32, -(p as i32), p as i32 * 10], p as f64 * 0.5)
        });
        assert_eq!(tiles.tile_count(), 3);
        assert_eq!(tiles.len(), 3);
        let t0 = tiles.tile(0);
        assert_eq!(t0.atom, &[2, 0]);
        assert_eq!(t0.x, &[2, 0]);
        assert_eq!(t0.y, &[-2, 0]);
        assert_eq!(t0.z, &[20, 0]);
        assert_eq!(t0.q, &[1.0, 0.0]);
        assert!(tiles.tile(1).is_empty());
        assert_eq!(tiles.tile(2).atom, &[1]);
    }

    #[test]
    fn refresh_updates_coordinates_and_preserves_layout() {
        let mut tiles = PosTiles::default();
        let members: [&[u32]; 3] = [&[2, 0], &[], &[1]];
        tiles.rebuild(members.into_iter(), |p| {
            ([p as i32, -(p as i32), p as i32 * 10], p as f64 * 0.5)
        });
        tiles.refresh_positions(|p| [p as i32 + 100, p as i32 - 100, 7]);
        let t0 = tiles.tile(0);
        assert_eq!(t0.atom, &[2, 0], "membership untouched");
        assert_eq!(t0.q, &[1.0, 0.0], "charges untouched");
        assert_eq!(t0.x, &[102, 100]);
        assert_eq!(t0.y, &[-98, -100]);
        assert_eq!(t0.z, &[7, 7]);
        assert_eq!(tiles.tile_start(2), 2);
        assert_eq!(tiles.raw_at(2), [101, -99, 7]);
        assert_eq!(tiles.tile_count(), 3, "segmentation untouched");
    }

    #[test]
    fn rebuild_reuses_buffers_and_resets_layout() {
        let mut tiles = PosTiles::default();
        let big: Vec<u32> = (0..100).collect();
        tiles.rebuild([big.as_slice()].into_iter(), |p| ([p as i32; 3], 0.0));
        assert_eq!(tiles.len(), 100);
        let members: [&[u32]; 2] = [&[5], &[7, 9]];
        tiles.rebuild(members.into_iter(), |p| ([p as i32; 3], 1.0));
        assert_eq!(tiles.tile_count(), 2);
        assert_eq!(tiles.len(), 3);
        assert_eq!(tiles.tile(1).atom, &[7, 9]);
    }
}
