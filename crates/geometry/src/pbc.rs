//! Orthorhombic periodic boxes.

use crate::Vec3;
use serde::{Deserialize, Serialize};

/// An orthorhombic periodic simulation cell with edge lengths in Å.
///
/// Anton's 512-node machines partition such a box 8×8×8 across the torus
/// (paper §2.2); all chemical systems in the paper's evaluation are cubic or
/// near-cubic orthorhombic cells.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct PeriodicBox {
    edge: Vec3,
}

impl PeriodicBox {
    /// A cubic box with the given edge length (Å).
    pub fn cubic(edge: f64) -> PeriodicBox {
        PeriodicBox::new(Vec3::splat(edge))
    }

    pub fn new(edge: Vec3) -> PeriodicBox {
        assert!(
            edge.x > 0.0 && edge.y > 0.0 && edge.z > 0.0,
            "box edges must be positive: {edge:?}"
        );
        PeriodicBox { edge }
    }

    #[inline]
    pub fn edge(&self) -> Vec3 {
        self.edge
    }

    #[inline]
    pub fn volume(&self) -> f64 {
        self.edge.x * self.edge.y * self.edge.z
    }

    /// Wrap a Cartesian position into the primary cell `[0, L)^3`.
    #[inline]
    pub fn wrap(&self, p: Vec3) -> Vec3 {
        Vec3::new(
            p.x - self.edge.x * (p.x / self.edge.x).floor(),
            p.y - self.edge.y * (p.y / self.edge.y).floor(),
            p.z - self.edge.z * (p.z / self.edge.z).floor(),
        )
    }

    /// Minimum-image displacement `a - b`.
    #[inline]
    pub fn min_image(&self, a: Vec3, b: Vec3) -> Vec3 {
        let mut d = a - b;
        d.x -= self.edge.x * (d.x / self.edge.x).round();
        d.y -= self.edge.y * (d.y / self.edge.y).round();
        d.z -= self.edge.z * (d.z / self.edge.z).round();
        d
    }

    /// Squared minimum-image distance.
    #[inline]
    pub fn dist2(&self, a: Vec3, b: Vec3) -> f64 {
        self.min_image(a, b).norm2()
    }

    /// Cartesian → fractional coordinates in `[0, 1)`.
    #[inline]
    pub fn to_frac(&self, p: Vec3) -> Vec3 {
        let w = self.wrap(p);
        Vec3::new(w.x / self.edge.x, w.y / self.edge.y, w.z / self.edge.z)
    }

    /// Fractional → Cartesian coordinates.
    #[inline]
    pub fn from_frac(&self, f: Vec3) -> Vec3 {
        Vec3::new(f.x * self.edge.x, f.y * self.edge.y, f.z * self.edge.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_into_primary_cell() {
        let b = PeriodicBox::cubic(10.0);
        let p = b.wrap(Vec3::new(-0.5, 10.5, 25.0));
        assert!((p.x - 9.5).abs() < 1e-12);
        assert!((p.y - 0.5).abs() < 1e-12);
        assert!((p.z - 5.0).abs() < 1e-12);
    }

    #[test]
    fn min_image_short_way_around() {
        let b = PeriodicBox::cubic(10.0);
        let d = b.min_image(Vec3::new(9.5, 0.0, 0.0), Vec3::new(0.5, 0.0, 0.0));
        assert!((d.x + 1.0).abs() < 1e-12, "{d:?}");
    }

    #[test]
    fn frac_roundtrip() {
        let b = PeriodicBox::new(Vec3::new(10.0, 20.0, 40.0));
        let p = Vec3::new(3.0, 15.0, 39.0);
        let q = b.from_frac(b.to_frac(p));
        assert!((p - q).norm() < 1e-12);
    }

    #[test]
    fn min_image_is_antisymmetric() {
        let b = PeriodicBox::cubic(12.0);
        let a = Vec3::new(1.0, 11.0, 6.0);
        let c = Vec3::new(11.5, 0.5, 5.0);
        let d1 = b.min_image(a, c);
        let d2 = b.min_image(c, a);
        assert!((d1 + d2).norm() < 1e-12);
    }
}
