//! Paper-artifact table builders: deterministic CSV renderings of the
//! Table 2 / Table 4 performance-model columns and the Figure 5–7-shaped
//! scaling/trace results, sourced from the checked-in benchmark JSON
//! artifacts (`results/BENCH_scaling.json`, `results/TRACE_scaling.json`).
//!
//! Only model-derived and counted quantities are exported — wall-clock
//! fields (`ms_per_step`, `wall_us`, `serialize_us`) are deliberately
//! excluded so the rendered bytes are a pure function of the committed
//! inputs. `cargo run -p anton-bench --bin export_tables` regenerates
//! `results/TABLE_*.csv`; CI diffs the bytes.

use anton_analysis::artifacts::{micro_from_f64, Cell, Table};
use anton_core::system_stats;
use anton_machine::perf::dhfr_stats;
use anton_machine::PerfModel;
use anton_systems::{table4_system, TABLE4};
use std::path::PathBuf;

use crate::json::Json;

/// The workspace `results/` directory (compile-time anchored, so binaries
/// and tests agree regardless of the invocation directory).
pub fn results_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
}

/// Table 2's Anton columns: the calibrated 512-node model's per-task
/// breakdown for one DHFR long-range step under both electrostatics
/// parameter sets, against the paper's measured values.
pub fn table2() -> Table {
    let mut t = Table::new(
        "TABLE_2",
        "DHFR per-step task profile on 512 Anton nodes: calibrated model vs paper (us)",
        &["setting", "task", "model_us", "paper_us"],
    );
    let tasks = [
        "range_limited",
        "fft_inverse",
        "mesh_interp",
        "correction",
        "bonded",
        "integration",
        "total",
    ];
    let paper = [
        [1.4, 24.7, 9.5, 2.5, 3.5, 1.6, 39.2],
        [1.9, 8.9, 2.0, 2.5, 4.1, 1.6, 15.4],
    ];
    for (si, (setting, cutoff, mesh)) in [("9A_64", 9.0, 64usize), ("13A_32", 13.0, 32)]
        .iter()
        .enumerate()
    {
        let b = PerfModel::anton_512().breakdown(&dhfr_stats(*cutoff, *mesh));
        let model = [
            b.range_limited_us,
            b.fft_us,
            b.mesh_us,
            b.correction_us,
            b.bonded_us,
            b.integration_us,
            b.lr_step_us,
        ];
        for (ti, task) in tasks.iter().enumerate() {
            t.push_row(vec![
                Cell::text(*setting),
                Cell::text(*task),
                Cell::Fixed6(micro_from_f64(model[ti])),
                Cell::Fixed6(micro_from_f64(paper[si][ti])),
            ]);
        }
    }
    t
}

/// Table 4's performance column: modeled simulation rate for the six
/// benchmark systems at their paper parameters, next to the paper's
/// measured rates.
pub fn table4() -> Table {
    let mut t = Table::new(
        "TABLE_4",
        "Benchmark systems: 512-node modeled rate vs paper (us/day)",
        &[
            "system",
            "pdb_id",
            "atoms",
            "side_a",
            "cutoff_a",
            "mesh",
            "model_us_per_day",
            "paper_us_per_day",
        ],
    );
    for e in &TABLE4 {
        let sys = table4_system(e, 1);
        let b = PerfModel::anton_512().breakdown(&system_stats(&sys));
        t.push_row(vec![
            Cell::text(e.name),
            Cell::text(e.pdb_id),
            Cell::Int(e.n_atoms as i128),
            Cell::Fixed6(micro_from_f64(e.side)),
            Cell::Fixed6(micro_from_f64(e.cutoff)),
            Cell::Int(e.mesh as i128),
            Cell::Fixed6(micro_from_f64(b.us_per_day)),
            Cell::Fixed6(micro_from_f64(e.paper_us_per_day)),
        ]);
    }
    t
}

fn want_schema(doc: &Json, want: &str) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == want => Ok(()),
        other => Err(format!("expected schema {want:?}, found {other:?}")),
    }
}

fn field<'a>(row: &'a Json, key: &str) -> Result<&'a Json, String> {
    row.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn int(row: &Json, key: &str) -> Result<i128, String> {
    field(row, key)?
        .as_u64()
        .map(|v| v as i128)
        .ok_or_else(|| format!("field {key:?} is not an integer"))
}

fn micro(row: &Json, key: &str) -> Result<i128, String> {
    field(row, key)?
        .as_f64()
        .map(micro_from_f64)
        .ok_or_else(|| format!("field {key:?} is not a number"))
}

fn hex64(row: &Json, key: &str) -> Result<u64, String> {
    let s = field(row, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} is not a string"))?;
    u64::from_str_radix(s, 16).map_err(|e| format!("field {key:?}: {e}"))
}

/// The deterministic columns of the scaling sweep (Figure 5-shaped): the
/// modeled communication profile and the exact exchange census per
/// (nodes, threads) point. Measured wall-clock columns are excluded.
pub fn scaling_table(bench: &Json) -> Result<Table, String> {
    want_schema(bench, "bench-scaling/v2")?;
    let mut t = Table::new(
        "TABLE_scaling",
        "Scaling sweep, deterministic columns: modeled comm profile + exact census per decomposition",
        &[
            "nodes",
            "threads",
            "atoms",
            "links_per_rank",
            "kb_per_step_rank",
            "mean_hops",
            "modeled_comm_us",
            "fft_messages_per_rank_lr_step",
            "fft_kb_per_rank_lr_step",
            "mesh_halo_kb_per_rank_lr_step",
            "match_candidates",
            "match_pairs",
            "match_batches",
            "rebuild_steps",
            "reuse_steps",
            "state_checksum",
        ],
    );
    let atoms = int(bench, "atoms")?;
    let rows = field(bench, "rows")?
        .as_arr()
        .ok_or("rows is not an array")?;
    for row in rows {
        t.push_row(vec![
            Cell::Int(int(row, "nodes")?),
            Cell::Int(int(row, "threads")?),
            Cell::Int(atoms),
            Cell::Int(int(row, "links_per_rank")?),
            Cell::Fixed6(micro(row, "kb_per_step_rank")?),
            Cell::Fixed6(micro(row, "mean_hops")?),
            Cell::Fixed6(micro(row, "modeled_comm_us")?),
            Cell::Fixed6(micro(row, "fft_messages_per_rank_lr_step")?),
            Cell::Fixed6(micro(row, "fft_kb_per_rank_lr_step")?),
            Cell::Fixed6(micro(row, "mesh_halo_kb_per_rank_lr_step")?),
            Cell::Int(int(row, "match_candidates")?),
            Cell::Int(int(row, "match_pairs")?),
            Cell::Int(int(row, "match_batches")?),
            Cell::Int(int(row, "rebuild_steps")?),
            Cell::Int(int(row, "reuse_steps")?),
            Cell::Hex(hex64(row, "state_checksum")?),
        ]);
    }
    Ok(t)
}

/// Per-phase span/message/byte census of the traced pass (Figure 6/7
/// shape): everything the trace models deterministically, without the
/// measured `wall_us` column.
pub fn trace_phases_table(trace: &Json) -> Result<Table, String> {
    want_schema(trace, "trace-scaling/v1")?;
    let mut t = Table::new(
        "TABLE_trace_phases",
        "Traced pass, deterministic columns: per-phase spans, modeled messages/bytes/us",
        &[
            "nodes",
            "threads",
            "phase",
            "spans",
            "messages",
            "bytes",
            "modeled_us",
            "state_checksum",
        ],
    );
    let rows = field(trace, "rows")?
        .as_arr()
        .ok_or("rows is not an array")?;
    for row in rows {
        let nodes = int(row, "nodes")?;
        let threads = int(row, "threads")?;
        let checksum = hex64(row, "state_checksum")?;
        let phases = field(row, "phases")?
            .as_arr()
            .ok_or("phases is not an array")?;
        for p in phases {
            let name = field(p, "phase")?
                .as_str()
                .ok_or("phase name is not a string")?;
            t.push_row(vec![
                Cell::Int(nodes),
                Cell::Int(threads),
                Cell::text(name),
                Cell::Int(int(p, "spans")?),
                Cell::Int(int(p, "messages")?),
                Cell::Int(int(p, "bytes")?),
                Cell::Fixed6(micro(p, "modeled_us")?),
                Cell::Hex(checksum),
            ]);
        }
    }
    Ok(t)
}

/// The checkpoint probe of the traced pass: file count and exact bytes
/// written (the serialize time is measured and therefore excluded).
pub fn ckpt_table(trace: &Json) -> Result<Table, String> {
    want_schema(trace, "trace-scaling/v1")?;
    let ck = field(trace, "checkpoint")?;
    let mut t = Table::new(
        "TABLE_ckpt",
        "Checkpoint probe of the traced 8-node pass: exact write census",
        &["files", "bytes_written"],
    );
    t.push_row(vec![
        Cell::Int(int(ck, "files")?),
        Cell::Int(int(ck, "bytes_written")?),
    ]);
    Ok(t)
}

/// The fleet drill's canonical-pass census: per-job preemption, resume,
/// and checkpoint-byte counters plus the pinned trajectory checksums, with
/// a TOTAL row whose checksum column carries the whole-fleet identity.
/// Every column is an exact integer of the canonical pass.
pub fn fleet_table(fleet: &Json) -> Result<Table, String> {
    want_schema(fleet, "fleet-drill/v1")?;
    let mut t = Table::new(
        "TABLE_fleet",
        "Fleet drill canonical pass: per-job slice census under checkpoint preemption",
        &[
            "job",
            "priority",
            "atoms",
            "cycles",
            "quantum",
            "preemptions",
            "resumes",
            "ckpt_bytes",
            "violations",
            "final_checksum",
        ],
    );
    let quantum = int(fleet, "quantum")?;
    let jobs = field(fleet, "jobs")?
        .as_arr()
        .ok_or("jobs is not an array")?;
    for row in jobs {
        let name = field(row, "name")?
            .as_str()
            .ok_or("job name is not a string")?;
        t.push_row(vec![
            Cell::text(name),
            Cell::Int(int(row, "priority")?),
            Cell::Int(int(row, "atoms")?),
            Cell::Int(int(row, "cycles")?),
            Cell::Int(quantum),
            Cell::Int(int(row, "preemptions")?),
            Cell::Int(int(row, "resumes")?),
            Cell::Int(int(row, "ckpt_bytes")?),
            Cell::Int(int(row, "violations")?),
            Cell::Hex(hex64(row, "final_checksum")?),
        ]);
    }
    let totals = field(fleet, "totals")?;
    t.push_row(vec![
        Cell::text("TOTAL"),
        Cell::Int(0),
        Cell::Int(jobs.iter().map(|r| int(r, "atoms").unwrap_or(0)).sum()),
        Cell::Int(int(totals, "cycles")?),
        Cell::Int(quantum),
        Cell::Int(int(totals, "preemptions")?),
        Cell::Int(int(totals, "resumes")?),
        Cell::Int(int(totals, "ckpt_bytes")?),
        Cell::Int(0),
        Cell::Hex(hex64(totals, "fleet_checksum")?),
    ]);
    Ok(t)
}

/// Every exported table, in a fixed order, from the three parsed
/// artifacts.
pub fn all_tables(bench: &Json, trace: &Json, fleet: &Json) -> Result<Vec<Table>, String> {
    Ok(vec![
        table2(),
        table4(),
        scaling_table(bench)?,
        trace_phases_table(trace)?,
        ckpt_table(trace)?,
        fleet_table(fleet)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tables_are_deterministic_and_well_formed() {
        let a = table2().render_csv();
        let b = table2().render_csv();
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 2 + 1 + 14, "2 settings x 7 tasks");
        let t4 = table4().render_csv();
        assert_eq!(t4.lines().count(), 2 + 1 + TABLE4.len());
        assert!(t4.contains("DHFR"));
    }

    #[test]
    fn scaling_table_rejects_wrong_schema() {
        let doc = Json::parse(r#"{"schema": "bench-scaling/v1", "rows": []}"#).unwrap();
        assert!(scaling_table(&doc).is_err());
    }

    #[test]
    fn scaling_table_excludes_wall_clock_columns() {
        let doc = Json::parse(
            r#"{"schema": "bench-scaling/v2", "atoms": 12, "rows": [
                {"nodes": 8, "threads": 2, "ms_per_step": 1.25, "lr_ms_per_eval": 0.5,
                 "links_per_rank": 4, "kb_per_step_rank": 60.282629, "mean_hops": 1.25,
                 "modeled_comm_us": 4.313569, "fft_messages_per_rank_lr_step": 384.0,
                 "fft_kb_per_rank_lr_step": 24.0, "mesh_halo_kb_per_rank_lr_step": 56.0,
                 "match_candidates": 10, "match_pairs": 5, "match_batches": 2,
                 "rebuild_steps": 1, "reuse_steps": 3, "mean_reuse_interval": 2.0,
                 "state_checksum": "9e6b6ba919bbf63a"}
            ]}"#,
        )
        .unwrap();
        let csv = scaling_table(&doc).unwrap().render_csv();
        assert!(!csv.contains("ms_per_step"));
        assert!(csv.contains("60.282629"));
        assert!(csv.contains("0x9e6b6ba919bbf63a"));
    }
}
