//! Table 1: the longest published all-atom protein MD simulations, plus the
//! rates this reproduction's performance model assigns to the hardware each
//! ran on, and the wall-clock a millisecond costs at each rate.
//!
//! `cargo run -p anton-bench --bin table1`

use anton_core::system_stats;
use anton_machine::PerfModel;
use anton_systems::bpti;

fn main() {
    // (length µs, protein, hardware, software).
    let rows = [
        (1031.0, "BPTI", "Anton (512 nodes)", "[native]"),
        (236.0, "gpW", "Anton (512 nodes)", "[native]"),
        (10.0, "WW domain", "x86 cluster (NCSA Abe)", "NAMD"),
        (2.0, "villin HP-35", "x86", "GROMACS"),
        (2.0, "rhodopsin", "Blue Gene/L", "Blue Matter"),
        (2.0, "rhodopsin", "Blue Gene/L", "Blue Matter"),
        (2.0, "beta2AR", "x86 cluster", "Desmond"),
    ];
    anton_bench::header(
        "Table 1 — longest published all-atom protein simulations (paper data)",
        &["length (µs)", "protein", "hardware", "software"],
    );
    for (len, protein, hw, sw) in rows {
        println!("{len:>10.0} | {protein:<12} | {hw:<24} | {sw}");
    }

    // Our model's account of why the top rows are Anton's.
    let sys = bpti(1);
    let stats = system_stats(&sys);
    let anton = PerfModel::anton_512().breakdown(&stats);
    let cluster = PerfModel::commodity_cluster_us_per_day(&stats, 512, 2);
    println!("\nBPTI-system rates from this reproduction's performance model:");
    println!(
        "  Anton 512 nodes : {:>8.1} µs/day (paper measured 9.8, later 18.2)",
        anton.us_per_day
    );
    println!(
        "  512-node cluster: {:>8.3} µs/day (Desmond-class, §5.1 reports 0.471)",
        cluster
    );
    println!(
        "  => 1031 µs of BPTI ≈ {:>5.0} days on Anton vs {:>7.0} days on the cluster",
        1031.0 / anton.us_per_day,
        1031.0 / cluster
    );
}
