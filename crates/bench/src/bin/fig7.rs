//! Figure 7: folding and unfolding events of gpW at its melting temperature.
//!
//! `cargo run -p anton-bench --bin fig7 [--full]`
//!
//! The paper's 236 µs explicit-solvent run is compute-gated; this harness
//! runs the standard Gō-model substitution (DESIGN.md §2): locate the
//! model's melting temperature (equal folded/unfolded populations), then run
//! a long Langevin trajectory and report Q(t) and detected transitions.

use anton_analysis::detect_transitions;
use anton_refmd::LangevinIntegrator;
use anton_systems::GoModel;

fn folded_fraction_at(temp: f64, steps: usize, seed: u64) -> f64 {
    let model = GoModel::gpw();
    let native = model.native.clone();
    let n = model.n_beads();
    let mut li = LangevinIntegrator::new(model, native, vec![100.0; n], temp, 0.004, 12.0, seed);
    let mut folded = 0usize;
    let mut total = 0usize;
    for s in 0..steps {
        li.step();
        if s > steps / 4 && s % 20 == 0 {
            total += 1;
            if li.provider.fraction_native(&li.positions) > 0.6 {
                folded += 1;
            }
        }
    }
    folded as f64 / total.max(1) as f64
}

fn main() {
    let full = anton_bench::full_mode();

    // 1. Bracket the melting temperature.
    println!("locating the Gō-model melting temperature…");
    let (mut t_lo, mut t_hi) = (300.0f64, 3000.0f64);
    for _ in 0..7 {
        let mid = 0.5 * (t_lo + t_hi);
        let f = folded_fraction_at(mid, 120_000, 3);
        println!("  T = {mid:>5.0} K: folded fraction {f:.2}");
        if f > 0.5 {
            t_lo = mid;
        } else {
            t_hi = mid;
        }
    }
    // Bias to the folded-side bracket: transitions are slow and the folded
    // basin empties quickly above Tm, so the lower edge samples both states.
    let tm = 0.97 * t_lo;
    println!("melting temperature ≈ {tm:.0} K (model units)");

    // 2. Long run at Tm.
    let steps = if full { 8_000_000 } else { 2_000_000 };
    let model = GoModel::gpw();
    let native = model.native.clone();
    let n = model.n_beads();
    let mut li = LangevinIntegrator::new(model, native, vec![100.0; n], tm, 0.004, 12.0, 17);
    let mut q_series = Vec::new();
    for s in 0..steps {
        li.step();
        if s % 200 == 0 {
            q_series.push(li.provider.fraction_native(&li.positions));
        }
    }

    // 3. Report the trace (coarse ASCII sparkline) and events.
    let ev = detect_transitions(&q_series, 0.75, 0.35);
    anton_bench::header(
        "Figure 7 — gpW folding/unfolding at Tm (Gō model)",
        &["quantity", "value"],
    );
    println!("{:<26} | {}", "samples", q_series.len());
    println!("{:<26} | {:.2}", "folded fraction", ev.folded_fraction);
    println!("{:<26} | {}", "folding events", ev.folding_at.len());
    println!("{:<26} | {}", "unfolding events", ev.unfolding_at.len());

    println!(
        "\nQ(t) trace (each char = {} steps):",
        200 * (q_series.len() / 80).max(1)
    );
    let bins = 80.min(q_series.len());
    let chunk = q_series.len() / bins;
    let glyphs = [' ', '.', ':', '-', '=', '#'];
    let line: String = (0..bins)
        .map(|b| {
            let q: f64 = q_series[b * chunk..(b + 1) * chunk].iter().sum::<f64>() / chunk as f64;
            glyphs[((q * (glyphs.len() - 1) as f64).round() as usize).min(glyphs.len() - 1)]
        })
        .collect();
    println!("folded   ^ |{line}|");
    println!("unfolded v  (paper Fig. 7: repeated folding/unfolding over 236 µs at Tm)");

    if ev.folding_at.is_empty() && ev.unfolding_at.is_empty() {
        println!(
            "\nnote: no complete transitions in this window — rerun with --full \
             (the paper's observation needed hundreds of µs on Anton)"
        );
    }
}
