//! §5.3: the millisecond BPTI simulation — system construction exactly per
//! the paper (17,758 particles: 892 protein atoms, 6 Cl⁻, 4,215 TIP4P-Ew
//! waters; 51.3 Å box; 10.4/7.1 Å cutoffs; 32³ mesh; 2.5 fs steps,
//! long-range every other step; Berendsen) — verified with a short run, and
//! the wall-clock projection to 1,031 µs.
//!
//! `cargo run -p anton-bench --bin bpti [--full]`

use anton_core::{system_stats, AntonSimulation, ThermostatKind};
use anton_machine::PerfModel;
use anton_systems::bpti;

fn main() {
    let full = anton_bench::full_mode();
    let sys = bpti(1);

    anton_bench::header(
        "§5.3 — BPTI system construction",
        &["quantity", "ours", "paper"],
    );
    let n_ions = sys.topology.charge.iter().filter(|&&q| q == -1.0).count();
    println!("{:<24} | {:>6} | {:>6}", "particles", sys.n_atoms(), 17758);
    println!(
        "{:<24} | {:>6} | {:>6}",
        "4-site waters",
        sys.topology.virtual_sites.len(),
        4215
    );
    println!("{:<24} | {:>6} | {:>6}", "chloride ions", n_ions, 6);
    println!(
        "{:<24} | {:>6.1} | {:>6.1}",
        "box edge (Å)",
        sys.pbox.edge().x,
        51.3
    );
    println!(
        "{:<24} | {:>6.1} | {:>6.1}",
        "cutoff (Å)", sys.params.cutoff, 10.4
    );
    println!(
        "{:<24} | {:>6.1} | {:>6.1}",
        "spreading cutoff (Å)", sys.params.spread_cutoff, 7.1
    );
    println!("{:<24} | {:>6} | {:>6}", "mesh", "32³", "32³");
    println!(
        "{:<24} | {:>6.1} | {:>6.1}",
        "net charge (e)",
        sys.topology.total_charge(),
        0.0
    );

    // Performance model and the millisecond projection.
    let stats = system_stats(&sys);
    let b = PerfModel::anton_512().breakdown(&stats);
    println!(
        "\nmodel rate: {:.1} µs/day (paper: 9.8 µs/day at publication, 18.2 after software/clock updates)",
        b.us_per_day
    );
    println!(
        "1,031 µs at the model rate: {:.0} days wall clock ({:.1e} time steps)",
        1031.0 / b.us_per_day,
        1031.0 * 1e9 / sys.params.dt_fs
    );

    // A short verified segment: Berendsen-controlled, as in the paper.
    let cycles = if full { 60 } else { 6 };
    println!(
        "\nrunning a verified {cycles}-cycle segment ({} fs simulated)…",
        cycles as f64 * 5.0
    );
    let mut sim = AntonSimulation::builder(sys)
        .velocities_from_temperature(300.0, 77)
        .thermostat(ThermostatKind::Berendsen {
            target_k: 300.0,
            tau_fs: 100.0,
        })
        .build();
    let e0 = sim.total_energy();
    let t = std::time::Instant::now();
    sim.run_cycles(cycles);
    let dt = t.elapsed().as_secs_f64();
    println!(
        "  E: {:.1} → {:.1} kcal/mol, T = {:.0} K, {:.2} s/step on this host",
        e0,
        sim.total_energy(),
        sim.temperature_k(),
        dt / (cycles as f64 * 2.0)
    );
    let host_rate = 2.5 * 86_400.0 / (dt / (cycles as f64 * 2.0)) * 1e-9;
    println!(
        "  this host: {host_rate:.4} µs/day → a millisecond would take {:.0} years \
         (the paper's point, inverted)",
        1031.0 / host_rate / 365.0
    );
}
