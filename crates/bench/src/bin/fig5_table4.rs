//! Figure 5 + Table 4: performance, accuracy and energy drift for the six
//! protein-in-water benchmark systems (and Figure 5's water-only series).
//!
//! `cargo run -p anton-bench --bin fig5_table4 [--full]`
//!
//! Default: performance model for all systems; force errors measured on the
//! two smallest systems; drift on a reduced surrogate. `--full` measures
//! force errors on all six systems and drift on gpW itself.

use anton_core::{system_stats, AntonSimulation};
use anton_machine::PerfModel;
use anton_refmd::reference::reference_forces;
use anton_systems::catalog::build_solvated;
use anton_systems::spec::RunParams;
use anton_systems::{table4_system, TABLE4};

fn main() {
    let full = anton_bench::full_mode();
    let model = PerfModel::anton_512();

    // ---------------- Figure 5 + Table 4 performance column ----------------
    anton_bench::header(
        "Figure 5 / Table 4 — 512-node performance (µs/day)",
        &[
            "system",
            "atoms",
            "cutoff",
            "mesh",
            "model",
            "paper",
            "water-only model",
        ],
    );
    for e in &TABLE4 {
        let sys = table4_system(e, 1);
        let stats = system_stats(&sys);
        let b = model.breakdown(&stats);
        let mut wstats = stats;
        wstats.n_bonded_terms = 0;
        wstats.protein_atoms = 0;
        wstats.n_correction_pairs = stats.n_atoms; // waters' intra-molecular exclusions
        let wb = model.breakdown(&wstats);
        println!(
            "{:<7} | {:>6} | {:>5.1} | {:>3}³ | {:>6.1} | {:>5.1} | {:>7.1}",
            e.name, e.n_atoms, e.cutoff, e.mesh, b.us_per_day, e.paper_us_per_day, wb.us_per_day
        );
    }

    // ---------------- Table 4 force errors ----------------
    anton_bench::header(
        "Table 4 — force errors (fraction of rms force)",
        &[
            "system",
            "total (ours)",
            "total (paper)",
            "numerical (ours)",
            "numerical (paper)",
        ],
    );
    let n_measure = if full { TABLE4.len() } else { 2 };
    for e in TABLE4.iter().take(n_measure) {
        let sys = table4_system(e, 1);
        let sim = AntonSimulation::builder(sys.clone())
            .velocities_from_temperature(300.0, 5)
            .build();

        // Total force error: Anton forces vs the conservative double-
        // precision reference.
        let (f_ref, _) = reference_forces(&sys, &sim.positions_f64());
        let total_err = anton_bench::anton_vs_reference_error(&sim, &f_ref);

        // Numerical force error: the same interactions evaluated with the
        // same parameters in f64 — isolate quantization. We approximate it
        // with the table-vs-exact kernel deviation over the live pair set,
        // which the `anton-core` tests measure directly; here we reuse the
        // engine's own comparison by evaluating exact kernels.
        let numerical_err = numerical_error(&sys, &sim);

        println!(
            "{:<7} | {:>11.2e} | {:>12.1e} | {:>15.2e} | {:>16.1e}",
            e.name, total_err, e.paper_total_force_err, numerical_err, e.paper_numerical_force_err
        );
    }
    if !full {
        println!("(force errors for the remaining systems with --full)");
    }

    // ---------------- Table 4 energy drift ----------------
    anton_bench::header(
        "Table 4 — NVE energy drift (kcal/mol/DoF/µs)",
        &["system", "drift (ours)", "paper", "window (fs)"],
    );
    // Drift is a per-DoF rate, so a water box at the entry's parameters
    // transfers across sizes. The paper's 0.02–0.05 kcal/mol/DoF/µs values
    // come from very long runs; a picosecond window can only bound the
    // drift by its own energy-fluctuation floor, which we report alongside.
    let cycles = if full { 1500 } else { 300 };
    let pbox = anton_geometry::PeriodicBox::cubic(22.0);
    let (top, positions) = anton_systems::waterbox::pure_water_topology(
        &pbox,
        &anton_forcefield::water::TIP3P,
        340,
        3,
    );
    let sys = anton_systems::System {
        name: "drift-water".into(),
        pbox,
        topology: top,
        positions,
        params: RunParams::paper(10.5, 32),
    };
    let dof = sys.topology.degrees_of_freedom();
    let (d, window) = anton_bench::measure_drift(sys, cycles, 13);
    println!(
        "{:<7} | {:>12.1} | {:>5.3} | {:>8.0}   (equilibrated water at gpW parameters)",
        "gpW*", d, TABLE4[0].paper_drift, window
    );
    println!(
        "noise floor: ±{:.0} kcal/mol/DoF/µs on a {window:.0} fs window (DoF = {dof});\n\
         the paper's 0.035 needs ~10⁶ fs windows — this measurement bounds the drift, it\n\
         cannot resolve the paper's second digit.",
        0.001 / (window * 1e-9)
    );
    let _ = build_solvated; // full-scale builder exercised by --full force errors
}

/// Numerical force error: table/fixed-point forces vs exact-kernel f64
/// forces over the identical pair set and positions.
fn numerical_error(sys: &anton_systems::System, sim: &AntonSimulation) -> f64 {
    use anton_geometry::{CellGrid, Vec3};
    let state = &sim.state;
    let pipe = &sim.pipeline;
    let pos = state.decode_positions(&sys.pbox);
    let top = &sys.topology;
    let mut exact = vec![Vec3::ZERO; sys.n_atoms()];
    let grid = CellGrid::build(&sys.pbox, &pos, sys.params.cutoff + 0.2);
    grid.for_each_pair_within(&pos, sys.params.cutoff + 0.2, |i, j, _d, _r2| {
        if top.exclusions.is_excluded(i as u32, j as u32) {
            return;
        }
        let d = state.delta_q20(pipe.half_edge_q20, i, j);
        let sum: i128 =
            d[0] as i128 * d[0] as i128 + d[1] as i128 * d[1] as i128 + d[2] as i128 * d[2] as i128;
        let r2q = anton_fixpoint::rne_shr_i128(sum, 20);
        if r2q > pipe.rc2_q20 || r2q == 0 {
            return;
        }
        let ds = 1.0 / (1i64 << 20) as f64;
        let dv = Vec3::new(d[0] as f64 * ds, d[1] as f64 * ds, d[2] as f64 * ds);
        let policy = top.exclusions.policy.unwrap();
        let (se, sl) = if top.exclusions.is_14(i as u32, j as u32) {
            (policy.elec_14, policy.lj_14)
        } else {
            (1.0, 1.0)
        };
        let qq = top.charge[i] * top.charge[j] * se;
        let (a, b) = top.lj_table.coeffs(top.lj_type[i], top.lj_type[j]);
        let (f_over_r, _) = pipe.ppip.pair_exact(dv.norm2(), qq, a * sl, b * sl);
        exact[i] += dv * f_over_r;
        exact[j] -= dv * f_over_r;
    });
    // Compare only the range-limited component (dominant in both error
    // columns' gap).
    let mut num = 0.0;
    let mut den = 0.0;
    let mut rl = anton_core::RawForces::zeroed(sys.n_atoms());
    // `range_limited` is `&mut self` (per-rank scratch); build a fresh
    // single-rank pipeline rather than mutating the simulation's own.
    anton_core::ForcePipeline::new(sys, anton_core::Decomposition::SingleRank, 1)
        .range_limited(sys, state, &mut rl);
    for (i, ex) in exact.iter().enumerate() {
        num += (rl.force_f64(i) - *ex).norm2();
        den += ex.norm2();
    }
    (num / den).sqrt()
}
