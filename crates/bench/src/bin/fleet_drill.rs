//! Crash drill for the `anton-fleet` subsystem: run a mixed waterbox
//! fleet under checkpoint-preemptive scheduling, kill the daemon with
//! SIGKILL at several distinct progress points (plus one deliberate
//! corruption of the newest persisted queue snapshot), restart it each
//! time, and prove that every job still finishes bitwise identical to an
//! uninterrupted solo run with a clean analysis battery.
//!
//! `cargo run --release -p anton-bench --bin fleet_drill`
//!
//! Two outputs:
//! - `results/FLEET_drill.json` — the *canonical pass* census (one fixed
//!   quantum/worker shape, run in-process): per-job preemptions, resumes,
//!   checkpoint bytes, and final checksums. Deterministic byte-for-byte;
//!   checked in and diffed by CI, and the source of `TABLE_fleet.csv`.
//! - `results/FLEET_report.json` — pass/fail legs of the whole drill,
//!   including the kill rounds (whose exact kill cycles are timing-
//!   dependent); gitignored, uploaded as a CI artifact.
//!
//! The drill exits nonzero if any leg fails.

use anton_fleet::{state_checksum, Fleet, FleetConfig, JobPhase, JobSpec, JobStatusView};
use std::path::PathBuf;

/// The canonical pass shape pinned by `results/FLEET_drill.json`.
const CANONICAL_QUANTUM: u64 = 3;
const CANONICAL_WORKERS: usize = 1;

/// The mixed fleet: sizes, temperatures, priorities, and lengths all
/// differ, including one multi-rank multi-thread member.
fn fleet_specs() -> Vec<JobSpec> {
    let spec = |name: &str,
                n_waters: u32,
                box_edge: f64,
                temperature_k: f64,
                cycles: u64,
                priority: u32,
                nodes: u32,
                threads: u32| JobSpec {
        name: name.into(),
        n_waters,
        box_edge,
        placement_seed: 3,
        temperature_k,
        velocity_seed: 7 + priority as u64,
        cutoff: 6.5,
        mesh: 16,
        cycles,
        priority,
        nodes,
        threads,
    };
    vec![
        spec("drill-hot-small", 20, 13.5, 320.0, 6, 3, 0, 1),
        spec("drill-mid", 30, 15.0, 300.0, 8, 2, 0, 1),
        spec("drill-wide", 40, 16.0, 300.0, 5, 1, 8, 2),
        spec("drill-cool", 24, 14.0, 285.0, 7, 0, 0, 1),
    ]
}

/// Uninterrupted solo run of one spec: the golden trajectory identity.
fn solo_checksum(spec: &JobSpec) -> u64 {
    let mut sim = spec.builder().expect("drill spec must build").build();
    sim.run_cycles(spec.cycles as usize);
    state_checksum(&sim)
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from("target/fleet_drill").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Leg {
    name: String,
    detail: String,
    passed: bool,
}

struct Report {
    legs: Vec<Leg>,
}

impl Report {
    fn record(&mut self, name: &str, passed: bool, detail: String) {
        println!(
            "  [{}] {name}: {detail}",
            if passed { "ok" } else { "FAIL" }
        );
        self.legs.push(Leg {
            name: name.to_string(),
            detail,
            passed,
        });
    }

    fn write(&self, path: &str) {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"fleet-report/v1\",\n");
        s.push_str("  \"legs\": [\n");
        for (i, l) in self.legs.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"passed\": {}, \"detail\": \"{}\"}}{}\n",
                l.name,
                l.passed,
                l.detail.replace('"', "'"),
                if i + 1 < self.legs.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"passed\": {}\n}}\n",
            self.legs.iter().all(|l| l.passed)
        ));
        if let Err(e) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &s)) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("wrote {path}");
        }
    }
}

/// Check a drained fleet's views against the goldens; returns a detail
/// string and overall pass.
fn check_against_golden(
    views: &[JobStatusView],
    specs: &[JobSpec],
    goldens: &[u64],
) -> (bool, String) {
    let mut bad = Vec::new();
    for (spec, golden) in specs.iter().zip(goldens) {
        let Some(v) = views.iter().find(|v| v.id == spec.job_id()) else {
            bad.push(format!("{}: missing", spec.name));
            continue;
        };
        if v.phase != JobPhase::Done {
            bad.push(format!("{}: phase {}", spec.name, v.phase.name()));
        } else if v.final_checksum != *golden {
            bad.push(format!(
                "{}: checksum {:016x} want {golden:016x}",
                spec.name, v.final_checksum
            ));
        } else if v.violations != 0 {
            bad.push(format!(
                "{}: {} battery violations",
                spec.name, v.violations
            ));
        }
    }
    if bad.is_empty() {
        (
            true,
            format!(
                "{} jobs bitwise-identical to solo, batteries clean",
                specs.len()
            ),
        )
    } else {
        (false, bad.join("; "))
    }
}

/// The canonical in-process pass: fixed quantum/workers, deterministic
/// census written to `results/FLEET_drill.json`.
fn canonical_pass(report: &mut Report, specs: &[JobSpec], goldens: &[u64]) {
    let mut cfg = FleetConfig::new(fresh_dir("canonical"));
    cfg.quantum = CANONICAL_QUANTUM;
    cfg.workers = CANONICAL_WORKERS;
    let fleet = Fleet::create(cfg).expect("create canonical fleet");
    for s in specs {
        let (_, fresh, _) = fleet.submit(s.clone()).expect("submit");
        assert!(fresh, "duplicate spec in drill corpus");
    }
    // Idempotent resubmit: identical specs are the same job.
    let dups_fresh = specs
        .iter()
        .filter(|s| fleet.submit((*s).clone()).expect("resubmit").1)
        .count();
    report.record(
        "idempotent_resubmit",
        dups_fresh == 0,
        format!(
            "{dups_fresh} of {} resubmits created new jobs (want 0)",
            specs.len()
        ),
    );

    fleet.run_to_completion();
    let views = fleet.list();
    let (ok, detail) = check_against_golden(&views, specs, goldens);
    report.record("canonical_pass_vs_golden", ok, detail);

    // Slice counters must match the closed form: ceil(cycles/quantum)-1.
    let counter_bad: Vec<String> = views
        .iter()
        .filter_map(|v| {
            let want = v.cycles_total.div_ceil(CANONICAL_QUANTUM) - 1;
            (v.preemptions != want || v.resumes != want).then(|| {
                format!(
                    "{}: preempt {} resume {} want {want}",
                    v.name, v.preemptions, v.resumes
                )
            })
        })
        .collect();
    report.record(
        "canonical_slice_counters",
        counter_bad.is_empty(),
        if counter_bad.is_empty() {
            "preemptions and resumes match ceil(cycles/quantum)-1".into()
        } else {
            counter_bad.join("; ")
        },
    );

    write_drill_json(&views, specs, "results/FLEET_drill.json");
    let _ = std::fs::remove_dir_all(&fleet.config().state_dir);
}

/// Deterministic canonical-census artifact (schema `fleet-drill/v1`).
/// Every field is an exact integer of the canonical pass; the rendering
/// is a pure function of the views, so CI can diff the bytes.
fn write_drill_json(views: &[JobStatusView], specs: &[JobSpec], path: &str) {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"fleet-drill/v1\",\n");
    s.push_str(&format!("  \"quantum\": {CANONICAL_QUANTUM},\n"));
    s.push_str(&format!("  \"workers\": {CANONICAL_WORKERS},\n"));
    s.push_str("  \"jobs\": [\n");
    let atoms_of = |v: &JobStatusView| {
        specs
            .iter()
            .find(|s| s.job_id() == v.id)
            .map(|s| s.n_waters as u64 * 3)
            .unwrap_or(0)
    };
    for (i, v) in views.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"id\": \"{}\", \"priority\": {}, \"atoms\": {}, \
             \"cycles\": {}, \"preemptions\": {}, \"resumes\": {}, \"ckpt_bytes\": {}, \
             \"violations\": {}, \"battery_samples\": {}, \"final_checksum\": \"{:016x}\"}}{}\n",
            v.name,
            v.id,
            v.priority,
            atoms_of(v),
            v.cycles_total,
            v.preemptions,
            v.resumes,
            v.ckpt_bytes,
            v.violations,
            v.battery_samples,
            v.final_checksum,
            if i + 1 < views.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    // One pinned identity for the whole fleet: FNV-1a over the per-job
    // final checksums in schedule order.
    let mut fleet_sum: u64 = 0xcbf29ce484222325;
    for v in views {
        for b in v.final_checksum.to_le_bytes() {
            fleet_sum = (fleet_sum ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }
    s.push_str("  \"totals\": {");
    s.push_str(&format!(
        "\"jobs\": {}, \"cycles\": {}, \"preemptions\": {}, \"resumes\": {}, \"ckpt_bytes\": {}, \
         \"fleet_checksum\": \"{fleet_sum:016x}\"",
        views.len(),
        views.iter().map(|v| v.cycles_total).sum::<u64>(),
        views.iter().map(|v| v.preemptions).sum::<u64>(),
        views.iter().map(|v| v.resumes).sum::<u64>(),
        views.iter().map(|v| v.ckpt_bytes).sum::<u64>(),
    ));
    s.push_str("}\n}\n");
    if let Err(e) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &s)) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

/// The preemption-invariance matrix: quantum {1,3,7} x workers {1,4},
/// each cell an in-process drain compared bitwise against the goldens.
fn invariance_matrix(report: &mut Report, specs: &[JobSpec], goldens: &[u64]) {
    for &quantum in &[1u64, 3, 7] {
        for &workers in &[1usize, 4] {
            let mut cfg = FleetConfig::new(fresh_dir(&format!("matrix-q{quantum}-w{workers}")));
            cfg.quantum = quantum;
            cfg.workers = workers;
            let fleet = Fleet::create(cfg).expect("create matrix fleet");
            for s in specs {
                fleet.submit(s.clone()).expect("submit");
            }
            fleet.run_to_completion();
            let (ok, detail) = check_against_golden(&fleet.list(), specs, goldens);
            report.record(&format!("matrix_q{quantum}_w{workers}"), ok, detail);
            let _ = std::fs::remove_dir_all(&fleet.config().state_dir);
        }
    }
}

/// The kill -9 drill (Unix only: it spawns a real daemon process).
#[cfg(unix)]
mod killdrill {
    use super::{check_against_golden, fresh_dir, Report};
    use anton_fleet::{FleetClient, JobPhase, JobSpec};
    use std::path::{Path, PathBuf};
    use std::process::{Child, Command, Stdio};

    const QUANTUM: u64 = 1;
    const WORKERS: usize = 1;

    /// Serve a daemon in this process (the `--daemon` self-respawn mode).
    pub fn serve_daemon(socket: &str, state: &str) -> i32 {
        let mut fleet = anton_fleet::FleetConfig::new(state);
        fleet.quantum = QUANTUM;
        fleet.workers = WORKERS;
        let cfg = anton_fleet::DaemonConfig {
            socket: PathBuf::from(socket),
            fleet,
        };
        match anton_fleet::daemon::serve(&cfg) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("fleet_drill daemon: {e}");
                1
            }
        }
    }

    fn spawn_daemon(socket: &Path, state: &Path) -> Child {
        Command::new(std::env::current_exe().expect("current_exe"))
            .arg("--daemon")
            .arg(socket)
            .arg(state)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn fleet_drill --daemon")
    }

    fn connect(socket: &Path) -> FleetClient {
        FleetClient::connect_retry(socket, 400, 10).expect("connect to drill daemon")
    }

    /// Submit the whole corpus; returns how many submissions were fresh.
    fn submit_all(client: &mut FleetClient, specs: &[JobSpec]) -> usize {
        specs
            .iter()
            .filter(|s| client.submit((*s).clone()).expect("submit").1)
            .count()
    }

    fn total_progress(client: &mut FleetClient) -> u64 {
        client
            .list()
            .expect("list")
            .iter()
            .map(|v| {
                if v.phase == JobPhase::Done {
                    v.cycles_total
                } else {
                    v.cycles_done
                }
            })
            .sum()
    }

    /// Poll until the fleet's total completed-cycle count reaches
    /// `threshold` (or everything finishes), then SIGKILL the daemon.
    fn kill_at_progress(mut child: Child, client: &mut FleetClient, threshold: u64) -> u64 {
        let mut seen = 0u64;
        for _ in 0..20_000u32 {
            seen = total_progress(client);
            if seen >= threshold {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        child.kill().expect("SIGKILL daemon");
        let _ = child.wait();
        seen
    }

    /// Flip one bit in the newest persisted queue snapshot: the next
    /// daemon start must fall back to the previous valid snapshot.
    fn corrupt_newest_queue_snapshot(state: &Path) -> Result<String, String> {
        let qdir = state.join("queue");
        let mut newest: Option<(String, PathBuf)> = None;
        for entry in std::fs::read_dir(&qdir).map_err(|e| e.to_string())? {
            let entry = entry.map_err(|e| e.to_string())?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("ckpt-")
                && name.ends_with(".ant")
                && newest.as_ref().map(|(n, _)| &name > n).unwrap_or(true)
            {
                newest = Some((name, entry.path()));
            }
        }
        let (name, path) = newest.ok_or("no queue snapshot found")?;
        let mut bytes = std::fs::read(&path).map_err(|e| e.to_string())?;
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).map_err(|e| e.to_string())?;
        Ok(name)
    }

    /// The drill proper: >= 3 SIGKILLs at increasing progress thresholds
    /// (one preceded by queue-snapshot corruption), a restart after each,
    /// and a final drain checked bitwise against the goldens.
    pub fn run(report: &mut Report, specs: &[JobSpec], goldens: &[u64]) {
        let root = fresh_dir("daemon");
        std::fs::create_dir_all(&root).expect("create drill root");
        let socket = root.join("s");
        let state = root.join("state");
        let total: u64 = specs.iter().map(|s| s.cycles).sum();
        // Three strictly increasing kill thresholds: early, middle, late.
        let thresholds = [2u64, total / 2, total.saturating_sub(3)];

        let mut progress_at_kill = Vec::new();
        for (round, &threshold) in thresholds.iter().enumerate() {
            if round == 2 {
                // Corrupt the newest queue snapshot while the daemon is
                // down; the restart below must recover from the previous
                // valid one (and the job checkpoint stores self-heal any
                // staleness that introduces).
                match corrupt_newest_queue_snapshot(&state) {
                    Ok(name) => report.record(
                        "queue_snapshot_corruption_injected",
                        true,
                        format!("flipped one bit in {name} before restart"),
                    ),
                    Err(e) => report.record("queue_snapshot_corruption_injected", false, e),
                }
            }
            let child = spawn_daemon(&socket, &state);
            let mut client = connect(&socket);
            let fresh = submit_all(&mut client, specs);
            if round == 0 {
                report.record(
                    "kill_round_0_submit",
                    fresh == specs.len(),
                    format!(
                        "{fresh} of {} submissions fresh on first round",
                        specs.len()
                    ),
                );
            }
            let known = client.ping().expect("ping").0;
            let seen = kill_at_progress(child, &mut client, threshold);
            progress_at_kill.push(seen);
            report.record(
                &format!("kill_round_{round}"),
                known == specs.len() as u64,
                format!(
                    "daemon knew {known} jobs; SIGKILL at total progress {seen}/{total} \
                     (threshold {threshold})"
                ),
            );
        }
        report.record(
            "kill_points_distinct",
            progress_at_kill.windows(2).all(|w| w[0] <= w[1]),
            format!("kill progress sequence {progress_at_kill:?}"),
        );

        // Final restart: recover, resubmit (idempotent), drain, verify.
        let child = spawn_daemon(&socket, &state);
        let mut client = connect(&socket);
        submit_all(&mut client, specs);
        let views = client
            .wait_until_done(4_000, 25)
            .expect("wait for drill fleet");
        let (ok, detail) = check_against_golden(&views, specs, goldens);
        report.record("final_fleet_vs_golden_after_kills", ok, detail);
        client.shutdown().expect("shutdown drill daemon");
        let mut child = child;
        let status = child.wait().expect("join daemon");
        report.record(
            "daemon_clean_shutdown",
            status.success(),
            format!("daemon exit status {status}"),
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}

fn main() {
    // Self-respawn mode: `fleet_drill --daemon <socket> <state>` serves a
    // daemon in this process (the parent SIGKILLs it mid-flight).
    #[cfg(unix)]
    {
        let args: Vec<String> = std::env::args().collect();
        if args.len() == 4 && args[1] == "--daemon" {
            std::process::exit(killdrill::serve_daemon(&args[2], &args[3]));
        }
    }

    let specs = fleet_specs();
    let total: u64 = specs.iter().map(|s| s.cycles).sum();
    println!(
        "fleet drill: {} jobs, {} total cycles, canonical quantum {CANONICAL_QUANTUM}",
        specs.len(),
        total
    );

    let mut report = Report { legs: Vec::new() };

    let goldens: Vec<u64> = specs.iter().map(solo_checksum).collect();
    for (s, g) in specs.iter().zip(&goldens) {
        println!("  golden {}: {g:016x}", s.name);
    }

    canonical_pass(&mut report, &specs, &goldens);
    invariance_matrix(&mut report, &specs, &goldens);
    #[cfg(unix)]
    killdrill::run(&mut report, &specs, &goldens);
    #[cfg(not(unix))]
    report.record(
        "kill_drill_skipped",
        true,
        "unix sockets unavailable on this platform".into(),
    );

    report.write("results/FLEET_report.json");
    if !report.legs.iter().all(|l| l.passed) {
        eprintln!("fleet drill FAILED");
        std::process::exit(1);
    }
    println!(
        "fleet drill passed: every schedule, restart, and corruption path \
         reached the solo-run checksums"
    );
}
