//! Table 3: match efficiency of the NT method.
//!
//! `cargo run -p anton-bench --bin table3 [--full]`
//! (`--full` adds the Monte Carlo cross-check, which is slower.)

use anton_nt::MatchEfficiency;

fn main() {
    let paper: [[f64; 3]; 3] = [[0.25, 0.40, 0.51], [0.12, 0.25, 0.40], [0.04, 0.12, 0.25]];
    anton_bench::header(
        "Table 3 — NT match efficiency, 13 Å cutoff (ours vs paper)",
        &["box side", "1x1x1", "2x2x2", "4x4x4"],
    );
    for (bi, &b) in [8.0f64, 16.0, 32.0].iter().enumerate() {
        let mut row = format!("{b:>7.0} Å");
        for (si, &s) in [1usize, 2, 4].iter().enumerate() {
            let eff = MatchEfficiency::new(b, s, 13.0).analytic();
            row += &format!(
                " | {:>4.0}% (paper {:>2.0}%)",
                eff * 100.0,
                paper[bi][si] * 100.0
            );
        }
        println!("{row}");
    }

    if anton_bench::full_mode() {
        println!("\nMonte Carlo cross-check (explicit random atoms, box 8 Å):");
        for s in [1usize, 2, 4] {
            let me = MatchEfficiency::new(8.0, s, 13.0);
            let mc: f64 = (0..8).map(|k| me.monte_carlo(0.05, 100 + k)).sum::<f64>() / 8.0;
            println!(
                "  subdiv {s}: analytic {:.1}%  monte-carlo {:.1}%",
                me.analytic() * 100.0,
                mc * 100.0
            );
        }
    }
}
