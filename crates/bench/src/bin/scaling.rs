//! Node/thread scaling on the simulated machine: measured step time, the
//! long-range (reciprocal) phase broken out, modeled torus communication
//! from the exchange-plan counters — now including the distributed FFT's
//! pencil messages and the mesh-halo traffic — and a bitwise cross-check
//! that every configuration produces the same trajectory.
//!
//! `cargo run --release -p anton-bench --bin scaling [--full]`
//!
//! Each row runs the same waterbox under a different simulated node count
//! and worker-thread count. "state" is a checksum of the exact final state:
//! identical in every row, per the parallel-invariance property (paper §4).
//! The comm columns come from `machine::perf::ExchangeCounters`, metered by
//! the static `ExchangePlan`/`MeshExchange` over the simulated torus —
//! modeled traffic, not host traffic.
//!
//! A machine-readable copy of every row lands in
//! `results/BENCH_scaling.json` so the perf trajectory is tracked across
//! PRs.

use anton_analysis::battery::Verifier;
use anton_analysis::verify::check_census_invariance;
use anton_core::{AntonSimulation, Decomposition, RawForces};
use anton_machine::perf::ExchangeCounters;
use anton_machine::MachineConfig;
use anton_systems::spec::RunParams;
use anton_systems::System;
use anton_trace::{chrome_trace_json, phase_summary, summary_table, PhaseRow};
use std::time::Instant;

fn waterbox(full: bool) -> System {
    let (edge, waters) = if full { (36.0, 1500) } else { (22.0, 340) };
    let pbox = anton_geometry::PeriodicBox::cubic(edge);
    let (top, positions) = anton_systems::waterbox::pure_water_topology(
        &pbox,
        &anton_forcefield::water::TIP3P,
        waters,
        3,
    );
    System {
        name: "scaling-water".into(),
        pbox,
        topology: top,
        positions,
        params: RunParams::paper(7.5, 16),
    }
}

/// FNV-1a over the exact raw state bytes.
fn state_checksum(sim: &AntonSimulation) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in sim.state.to_bytes().as_slice() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// One measured + modeled configuration.
struct Row {
    nodes: usize,
    threads: usize,
    ms_per_step: f64,
    /// Wall time of one full long-range evaluation (reciprocal phase +
    /// overlapped corrections), isolated from the rest of the step.
    lr_ms_per_eval: f64,
    links_per_rank: u64,
    kb_per_step_rank: f64,
    mean_hops: f64,
    modeled_comm_us: f64,
    fft_msgs_per_rank_lr: f64,
    fft_kb_per_rank_lr: f64,
    halo_kb_per_rank_lr: f64,
    /// Match-stage census over the whole run (candidates examined, pairs
    /// surviving the exact cutoff, batches evaluated). The pair count is a
    /// pure function of the trajectory — identical in every row — while
    /// candidates and batches depend on the decomposition's tiling.
    match_candidates: u64,
    match_pairs: u64,
    match_batches: u64,
    /// Persistent match-cache census: how many short-range evaluations
    /// rebuilt the tile/batch structure vs reused it. The schedule is a
    /// pure function of the trajectory (exact fixed-point displacement
    /// monitor), so both counts are identical in every row.
    rebuild_steps: u64,
    reuse_steps: u64,
    checksum: u64,
}

/// Mean steps per rebuild period (the initial build counts as a rebuild).
fn mean_reuse_interval(rebuilds: u64, reuses: u64) -> f64 {
    if rebuilds == 0 {
        0.0
    } else {
        (rebuilds + reuses) as f64 / rebuilds as f64
    }
}

/// Time the long-range phase in isolation, leaving the trajectory and the
/// exchange counters exactly as they were (counters are snapshot/restored
/// so the timing reps don't perturb the per-step averages).
fn time_long_range(sim: &mut AntonSimulation, reps: u32) -> f64 {
    let saved = sim.pipeline.counters;
    let mut tmp = RawForces::zeroed(sim.system.n_atoms());
    let t0 = Instant::now();
    for _ in 0..reps {
        tmp.clear();
        sim.pipeline.long_range(&sim.system, &sim.state, &mut tmp);
    }
    let dt = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
    sim.pipeline.counters = saved;
    dt
}

fn json_escape_free(v: f64) -> String {
    // Finite metric values only; fixed precision keeps the file stable in
    // form (values still vary with host timing, as any benchmark does).
    format!("{v:.6}")
}

fn write_json(path: &str, sys: &System, steps: u64, rows: &[Row], invariant: bool) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"bench-scaling/v2\",\n");
    s.push_str(&format!("  \"atoms\": {},\n", sys.n_atoms()));
    s.push_str(&format!("  \"steps_per_row\": {steps},\n"));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"nodes\": {}, \"threads\": {}, \"ms_per_step\": {}, \
             \"lr_ms_per_eval\": {}, \"links_per_rank\": {}, \
             \"kb_per_step_rank\": {}, \"mean_hops\": {}, \
             \"modeled_comm_us\": {}, \"fft_messages_per_rank_lr_step\": {}, \
             \"fft_kb_per_rank_lr_step\": {}, \
             \"mesh_halo_kb_per_rank_lr_step\": {}, \"match_candidates\": {}, \
             \"match_pairs\": {}, \"match_batches\": {}, \
             \"rebuild_steps\": {}, \"reuse_steps\": {}, \
             \"mean_reuse_interval\": {}, \
             \"state_checksum\": \"{:016x}\"}}{}\n",
            r.nodes,
            r.threads,
            json_escape_free(r.ms_per_step),
            json_escape_free(r.lr_ms_per_eval),
            r.links_per_rank,
            json_escape_free(r.kb_per_step_rank),
            json_escape_free(r.mean_hops),
            json_escape_free(r.modeled_comm_us),
            json_escape_free(r.fft_msgs_per_rank_lr),
            json_escape_free(r.fft_kb_per_rank_lr),
            json_escape_free(r.halo_kb_per_rank_lr),
            r.match_candidates,
            r.match_pairs,
            r.match_batches,
            r.rebuild_steps,
            r.reuse_steps,
            json_escape_free(mean_reuse_interval(r.rebuild_steps, r.reuse_steps)),
            r.checksum,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"invariant\": {invariant}\n"));
    s.push_str("}\n");
    if let Err(e) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &s)) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

/// One traced configuration: the per-phase summary with the measured
/// wall-clock stripped, leaving only the deterministic payload.
struct TraceRow {
    nodes: usize,
    threads: usize,
    checksum: u64,
    phases: Vec<PhaseRow>,
}

/// Checkpoint cost of the traced 8-node row: file/byte counts are exact
/// (the snapshot encoding is deterministic), serialize+write time is
/// measured wall-clock from the `checkpoint` trace phase.
struct CkptStats {
    files: u64,
    bytes_written: u64,
    serialize_us: f64,
}

fn write_trace_json(path: &str, sys: &System, cycles: usize, rows: &[TraceRow], ckpt: &CkptStats) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"trace-scaling/v1\",\n");
    s.push_str(&format!("  \"atoms\": {},\n", sys.n_atoms()));
    s.push_str(&format!("  \"cycles_per_row\": {cycles},\n"));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"nodes\": {}, \"threads\": {}, \"state_checksum\": \"{:016x}\", \"phases\": [\n",
            r.nodes, r.threads, r.checksum
        ));
        for (j, p) in r.phases.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"phase\": \"{}\", \"spans\": {}, \"messages\": {}, \
                 \"bytes\": {}, \"modeled_us\": {}, \"wall_us\": {}}}{}\n",
                p.phase.name(),
                p.spans,
                p.messages,
                p.bytes,
                json_escape_free(p.modeled_us),
                json_escape_free(p.measured_ns as f64 / 1e3),
                if j + 1 < r.phases.len() { "," } else { "" },
            ));
        }
        s.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"checkpoint\": {{\"files\": {}, \"bytes_written\": {}, \"serialize_us\": {}}}\n",
        ckpt.files,
        ckpt.bytes_written,
        json_escape_free(ckpt.serialize_us),
    ));
    s.push_str("}\n");
    if let Err(e) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &s)) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

/// Re-run a few decompositions with the trace subsystem enabled. Each
/// phase summary goes to `results/TRACE_scaling.json` for the perf gate:
/// span counts and modeled communication gate exactly/tightly, while the
/// `wall_us` column (measured wall-clock inside the phase's spans, here so
/// dispatch overhead is a number instead of a guess) gates only at the
/// loose measured tier. The chrome-trace of
/// the 8-node run goes to `results/TRACE_chrome.json` (gitignored; open in
/// chrome://tracing or Perfetto). Returns the rows for the invariance check.
fn traced_pass(sys: &System, cycles: usize) -> (Vec<TraceRow>, CkptStats) {
    let mut out = Vec::new();
    let mut ckpt_stats = CkptStats {
        files: 0,
        bytes_written: 0,
        serialize_us: 0.0,
    };
    // (1, 4) is the thread fan-out probe: one node, so every RangeLimited/
    // LongRange span is pure work while the Dispatch spans are pure pool
    // overhead — the measured cost behind the nodes=1 threads>1 slowdown.
    for &(nodes, threads) in &[(1usize, 1usize), (1, 4), (8, 2), (64, 4)] {
        let decomposition = if nodes == 1 && threads == 1 {
            Decomposition::SingleRank
        } else {
            Decomposition::Nodes(nodes)
        };
        let mut builder = AntonSimulation::builder(sys.clone())
            .velocities_from_temperature(300.0, 7)
            .decomposition(decomposition)
            .threads(threads)
            .tracing(true);
        // The 8-node row doubles as the checkpoint-cost probe: write a
        // rotated checkpoint every 4 cycles and report bytes + time. The
        // trajectory is unaffected (checkpointing is observability-only),
        // which the invariance assertion below re-proves every run.
        let probe_ckpt = nodes == 8;
        if probe_ckpt {
            let _ = std::fs::remove_dir_all("target/ckpt_scaling");
            builder = builder
                .checkpoint_every(4)
                .checkpoint_dir("target/ckpt_scaling")
                .checkpoint_keep(2);
        }
        let mut sim = builder.build();
        sim.run_cycles(cycles);
        let buf = sim.trace().buf().expect("tracing was enabled");
        assert_eq!(buf.dropped_spans(), 0, "trace span capacity exceeded");
        assert_eq!(buf.dropped_counters(), 0, "trace counter capacity exceeded");
        let phases = phase_summary(buf);
        if probe_ckpt {
            let (files, bytes) = sim
                .checkpoint_stats()
                .expect("checkpointing was configured on the 8-node row");
            let serialize_us = phases
                .iter()
                .find(|p| p.phase.name() == "checkpoint")
                .map_or(0.0, |p| p.measured_ns as f64 / 1e3);
            ckpt_stats = CkptStats {
                files,
                bytes_written: bytes,
                serialize_us,
            };
            println!(
                "\ncheckpoint probe (8 nodes): {files} files, {bytes} bytes, {serialize_us:.1} µs serialize+write"
            );
        }
        println!("\n--- traced: {nodes} nodes, {threads} threads ---");
        print!("{}", summary_table(&phases));
        if nodes == 8 {
            let chrome = chrome_trace_json(buf);
            if let Err(e) = std::fs::create_dir_all("results")
                .and_then(|()| std::fs::write("results/TRACE_chrome.json", &chrome))
            {
                eprintln!("warning: could not write results/TRACE_chrome.json: {e}");
            } else {
                println!("wrote results/TRACE_chrome.json");
            }
        }
        // The traced rows run the same battery: tracing (like
        // checkpointing) is observability-only, so every identity must
        // still hold word-for-word.
        let mut verifier = Verifier::new(&sim);
        verifier.sample(&sim);
        verifier.assert_clean();
        out.push(TraceRow {
            nodes,
            threads,
            checksum: state_checksum(&sim),
            phases,
        });
    }
    write_trace_json("results/TRACE_scaling.json", sys, cycles, &out, &ckpt_stats);
    (out, ckpt_stats)
}

fn main() {
    let full = anton_bench::full_mode();
    let sys = waterbox(full);
    let cycles = if full { 20 } else { 8 };
    let k = sys.params.longrange_every.max(1) as u64;
    let steps = cycles as u64 * k;
    let lr_reps = if full { 10 } else { 4 };

    anton_bench::header(
        &format!(
            "Node/thread scaling — {} atoms, {} steps per row",
            sys.n_atoms(),
            steps
        ),
        &[
            "nodes",
            "thr",
            "ms/step",
            "lr ms",
            "links/rank",
            "KB/step·rank",
            "hops",
            "comm µs (model)",
            "fft msg/rank",
            "fft KB/rank",
            "state",
        ],
    );

    // Warm the host (CPU frequency, page cache, lazily-faulted buffers)
    // before the first timed row; without this the process's cold start
    // bills itself entirely to the 1-node/1-thread row. The warmup state
    // is dropped, so row trajectories are untouched.
    {
        let mut warm = AntonSimulation::builder(sys.clone())
            .velocities_from_temperature(300.0, 7)
            .decomposition(Decomposition::SingleRank)
            .build();
        warm.run_cycles(2);
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut row_counters: Vec<ExchangeCounters> = Vec::new();
    for &nodes in &[1usize, 8, 64] {
        for &threads in &[1usize, 2, 4] {
            let decomposition = if nodes == 1 && threads == 1 {
                Decomposition::SingleRank
            } else {
                Decomposition::Nodes(nodes)
            };
            let mut sim = AntonSimulation::builder(sys.clone())
                .velocities_from_temperature(300.0, 7)
                .decomposition(decomposition)
                .threads(threads)
                .build();
            let t0 = Instant::now();
            sim.run_cycles(cycles);
            let ms_per_step = t0.elapsed().as_secs_f64() * 1e3 / steps as f64;
            let lr_ms_per_eval = time_long_range(&mut sim, lr_reps);

            // Closed-form identity battery over the final state: the
            // verifier's serial recompute cross-checks every force word and
            // energy scalar bitwise, and the census identities audit the
            // cumulative exchange counters. Sampled after the timed loop so
            // the recompute doesn't bill itself to `ms_per_step`
            // (`time_long_range` snapshots/restores the counters, so the
            // cumulative identities still hold here).
            let mut verifier = Verifier::new(&sim);
            verifier.sample(&sim);
            verifier.assert_clean();
            row_counters.push(sim.pipeline.counters);

            let mut row = Row {
                nodes,
                threads,
                ms_per_step,
                lr_ms_per_eval,
                links_per_rank: 0,
                kb_per_step_rank: 0.0,
                mean_hops: 0.0,
                modeled_comm_us: 0.0,
                fft_msgs_per_rank_lr: 0.0,
                fft_kb_per_rank_lr: 0.0,
                halo_kb_per_rank_lr: 0.0,
                match_candidates: sim.pipeline.counters.match_candidates,
                match_pairs: sim.pipeline.counters.match_pairs,
                match_batches: sim.pipeline.counters.match_batches,
                rebuild_steps: sim.pipeline.counters.rebuild_steps,
                reuse_steps: sim.pipeline.counters.reuse_steps,
                checksum: state_checksum(&sim),
            };
            if let Some(rs) = sim.pipeline.rank_set() {
                let c = &sim.pipeline.counters;
                let cfg = MachineConfig::with_nodes(rs.rank_count());
                let n = rs.rank_count();
                row.links_per_rank = rs.plan.max_links_per_rank() as u64;
                row.kb_per_step_rank = c.per_rank_step_bytes(n) / 1024.0;
                row.mean_hops = c.mean_hops();
                row.modeled_comm_us = c.modeled_step_comm_us(&cfg, n);
                row.fft_msgs_per_rank_lr = c.fft_messages_per_rank_lr_step(n);
                row.fft_kb_per_rank_lr = c.fft_bytes_per_rank_lr_step(n) / 1024.0;
                row.halo_kb_per_rank_lr = c.mesh_halo_bytes_per_rank_lr_step(n) / 1024.0;
            }
            println!(
                "{:>5} | {:>3} | {:>7.3} | {:>7.3} | {:>10} | {:>12.2} | {:>4.2} | {:>15.3} | {:>12.1} | {:>11.2} | {:016x}",
                row.nodes,
                row.threads,
                row.ms_per_step,
                row.lr_ms_per_eval,
                row.links_per_rank,
                row.kb_per_step_rank,
                row.mean_hops,
                row.modeled_comm_us,
                row.fft_msgs_per_rank_lr,
                row.fft_kb_per_rank_lr,
                row.checksum
            );
            rows.push(row);
        }
    }

    let (traced, _ckpt) = traced_pass(&sys, cycles);

    let invariant = rows.iter().all(|r| r.checksum == rows[0].checksum)
        && traced.iter().all(|r| r.checksum == rows[0].checksum);
    // The surviving pair count is the size of the exact interaction set —
    // a pure function of the trajectory, so it must agree across every
    // decomposition (candidates and batches legitimately differ).
    assert!(
        rows.iter().all(|r| r.match_pairs == rows[0].match_pairs),
        "match-stage pair census diverged across decompositions"
    );
    // The match-cache rebuild schedule is gated by an exact fixed-point
    // displacement monitor — a pure function of the trajectory — so the
    // rebuild/reuse split must be identical across every decomposition
    // and thread count.
    assert!(
        rows.iter()
            .all(|r| r.rebuild_steps == rows[0].rebuild_steps
                && r.reuse_steps == rows[0].reuse_steps),
        "match-cache rebuild schedule diverged across configurations"
    );
    // The same invariance, re-proved through the verifier's typed path:
    // the decomposition-independent census words (surviving pairs,
    // rebuild/reuse schedule) must agree between every pair of rows.
    for (i, c) in row_counters.iter().enumerate().skip(1) {
        let skew = check_census_invariance(cycles as u64, &row_counters[0], c);
        assert!(
            skew.is_empty(),
            "census invariance violated between row 0 and row {i}: {skew:?}"
        );
    }
    println!(
        "verifier: full identity battery clean on all {} rows; cross-row census invariant",
        rows.len()
    );
    println!(
        "match cache: {} rebuilds / {} reuses per row (mean interval {:.2} steps), identical in every row",
        rows[0].rebuild_steps,
        rows[0].reuse_steps,
        mean_reuse_interval(rows[0].rebuild_steps, rows[0].reuse_steps)
    );
    println!(
        "\nparallel invariance: {}",
        if invariant {
            "all configurations (traced and untraced) bitwise identical"
        } else {
            "VIOLATED — configurations diverged"
        }
    );
    write_json("results/BENCH_scaling.json", &sys, steps, &rows, invariant);
    assert!(invariant, "trajectory diverged across configurations");
}
