//! Node/thread scaling on the simulated machine: measured step time,
//! modeled torus communication from the exchange-plan counters, and a
//! bitwise cross-check that every configuration produces the same
//! trajectory.
//!
//! `cargo run --release -p anton-bench --bin scaling [--full]`
//!
//! Each row runs the same waterbox under a different simulated node count
//! and worker-thread count. "state" is a checksum of the exact final state:
//! identical in every row, per the parallel-invariance property (paper §4).
//! The comm columns come from `machine::perf::ExchangeCounters`, metered by
//! the static `ExchangePlan` over the simulated torus — modeled traffic,
//! not host traffic.

use anton_core::{AntonSimulation, Decomposition};
use anton_machine::MachineConfig;
use anton_systems::spec::RunParams;
use anton_systems::System;
use std::time::Instant;

fn waterbox(full: bool) -> System {
    let (edge, waters) = if full { (36.0, 1500) } else { (22.0, 340) };
    let pbox = anton_geometry::PeriodicBox::cubic(edge);
    let (top, positions) = anton_systems::waterbox::pure_water_topology(
        &pbox,
        &anton_forcefield::water::TIP3P,
        waters,
        3,
    );
    System {
        name: "scaling-water".into(),
        pbox,
        topology: top,
        positions,
        params: RunParams::paper(7.5, 16),
    }
}

/// FNV-1a over the exact raw state bytes.
fn state_checksum(sim: &AntonSimulation) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in sim.state.to_bytes().as_slice() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

fn main() {
    let full = anton_bench::full_mode();
    let sys = waterbox(full);
    let cycles = if full { 20 } else { 8 };
    let k = sys.params.longrange_every.max(1) as u64;
    let steps = cycles as u64 * k;

    anton_bench::header(
        &format!(
            "Node/thread scaling — {} atoms, {} steps per row",
            sys.n_atoms(),
            steps
        ),
        &[
            "nodes",
            "thr",
            "ms/step",
            "links/rank",
            "KB/step·rank",
            "hops",
            "comm µs (model)",
            "state",
        ],
    );

    let mut checksums = Vec::new();
    for &nodes in &[1usize, 8, 64] {
        for &threads in &[1usize, 2, 4] {
            let decomposition = if nodes == 1 && threads == 1 {
                Decomposition::SingleRank
            } else {
                Decomposition::Nodes(nodes)
            };
            let mut sim = AntonSimulation::builder(sys.clone())
                .velocities_from_temperature(300.0, 7)
                .decomposition(decomposition)
                .threads(threads)
                .build();
            let t0 = Instant::now();
            sim.run_cycles(cycles);
            let ms_per_step = t0.elapsed().as_secs_f64() * 1e3 / steps as f64;

            let (links, kb, hops, comm) = match sim.pipeline.rank_set() {
                Some(rs) => {
                    let c = &sim.pipeline.counters;
                    let cfg = MachineConfig::with_nodes(rs.rank_count());
                    (
                        format!("{}", rs.plan.max_links_per_rank()),
                        format!("{:.2}", c.per_rank_step_bytes(rs.rank_count()) / 1024.0),
                        format!("{:.2}", c.mean_hops()),
                        format!("{:.3}", c.modeled_step_comm_us(&cfg, rs.rank_count())),
                    )
                }
                None => ("-".into(), "-".into(), "-".into(), "-".into()),
            };
            let sum = state_checksum(&sim);
            checksums.push(sum);
            println!(
                "{:>5} | {:>3} | {:>7.3} | {:>10} | {:>12} | {:>4} | {:>15} | {:016x}",
                nodes, threads, ms_per_step, links, kb, hops, comm, sum
            );
        }
    }

    let invariant = checksums.iter().all(|&c| c == checksums[0]);
    println!(
        "\nparallel invariance: {}",
        if invariant {
            "all configurations bitwise identical"
        } else {
            "VIOLATED — configurations diverged"
        }
    );
    assert!(invariant, "trajectory diverged across configurations");
}
