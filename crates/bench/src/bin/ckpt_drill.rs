//! Crash-recovery drill for the `anton-ckpt` subsystem: kill a run at
//! arbitrary cycles and resume it, inject truncations and bit-flips into
//! checkpoint files, and prove that every injected fault is detected with
//! a typed error and that recovery falls back to the newest *valid*
//! checkpoint — finishing bitwise identical to the uninterrupted run.
//!
//! `cargo run --release -p anton-bench --bin ckpt_drill`
//!
//! The drill exits nonzero if any injected fault goes undetected, any
//! recovery resumes from the wrong checkpoint, or any resumed trajectory
//! diverges from golden. A machine-readable report lands in
//! `results/CKPT_drill.json` (gitignored; uploaded as a CI artifact).

use anton_analysis::battery::Verifier;
use anton_ckpt::{load_file, CheckpointStore, CkptError};
use anton_core::{AntonSimulation, Decomposition};
use anton_systems::spec::RunParams;
use anton_systems::System;
use std::path::{Path, PathBuf};

/// Total cycles of the drill trajectory (one checkpoint per cycle).
const CYCLES: usize = 6;
/// Node/thread shape under drill (multi-rank, multi-thread: the
/// configuration where resume has the most state to get right).
const NODES: usize = 8;
const THREADS: usize = 2;

fn drill_system() -> System {
    let pbox = anton_geometry::PeriodicBox::cubic(18.0);
    let (topology, positions) = anton_systems::waterbox::pure_water_topology(
        &pbox,
        &anton_forcefield::water::TIP3P,
        180,
        3,
    );
    System {
        name: "ckpt-drill-water".into(),
        pbox,
        topology,
        positions,
        params: RunParams::paper(7.5, 16),
    }
}

fn builder(dir: Option<&Path>) -> anton_core::SimulationBuilder {
    let mut b = AntonSimulation::builder(drill_system())
        .velocities_from_temperature(300.0, 11)
        .decomposition(Decomposition::Nodes(NODES))
        .threads(THREADS);
    if let Some(dir) = dir {
        b = b.checkpoint_every(1).checkpoint_dir(dir);
    }
    b
}

/// FNV-1a over the exact raw state bytes (workspace-canonical checksum).
fn state_checksum(sim: &AntonSimulation) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in sim.state.to_bytes().as_slice() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from("target/ckpt_drill").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One drill leg's outcome, accumulated into the report.
struct Leg {
    name: String,
    detail: String,
    passed: bool,
}

struct Report {
    legs: Vec<Leg>,
    injections: u64,
    detections: u64,
}

impl Report {
    fn record(&mut self, name: &str, passed: bool, detail: String) {
        println!(
            "  [{}] {name}: {detail}",
            if passed { "ok" } else { "FAIL" }
        );
        self.legs.push(Leg {
            name: name.to_string(),
            detail,
            passed,
        });
    }

    fn write(&self, path: &str) {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"ckpt-drill/v1\",\n");
        s.push_str(&format!("  \"injections\": {},\n", self.injections));
        s.push_str(&format!("  \"detections\": {},\n", self.detections));
        s.push_str("  \"legs\": [\n");
        for (i, l) in self.legs.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"passed\": {}, \"detail\": \"{}\"}}{}\n",
                l.name,
                l.passed,
                l.detail.replace('"', "'"),
                if i + 1 < self.legs.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"passed\": {}\n}}\n",
            self.legs.iter().all(|l| l.passed)
        ));
        if let Err(e) = std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &s)) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("wrote {path}");
        }
    }
}

/// Run the closed-form identity battery over a finished simulation and
/// record the outcome as a drill leg. After a resume this audits the
/// restored state end to end: every force word and energy scalar must
/// recompute bitwise, and the cumulative exchange census (carried through
/// the checkpoint) must still satisfy every per-step identity.
fn battery_leg(report: &mut Report, name: &str, sim: &AntonSimulation) {
    let mut verifier = Verifier::new(sim);
    verifier.sample(sim);
    let violations = verifier.violations();
    report.record(
        name,
        violations.is_empty(),
        if violations.is_empty() {
            "identity battery clean".to_string()
        } else {
            format!("{} violations, first: {}", violations.len(), violations[0])
        },
    );
}

/// Kill-and-resume drill: run to `kill_cycle`, drop the simulation with no
/// orderly shutdown, resume from the store, finish, compare bitwise.
fn kill_resume_leg(report: &mut Report, kill_cycle: usize, golden_final: u64, k: u64) {
    let dir = fresh_dir(&format!("kill{kill_cycle}"));
    {
        let mut sim = builder(Some(&dir)).build();
        sim.run_cycles(kill_cycle);
        // Killed here: the process would die with the store already holding
        // an atomically-renamed checkpoint for this cycle.
    }
    let resumed = builder(None).resume_from(&dir);
    match resumed {
        Ok(mut sim) => {
            let step_ok = sim.step_count() == kill_cycle as u64 * k;
            sim.run_cycles(CYCLES - kill_cycle);
            let sum = state_checksum(&sim);
            report.record(
                &format!("kill_at_cycle_{kill_cycle}"),
                step_ok && sum == golden_final,
                format!(
                    "resumed step {} (want {}), final {:016x} (want {golden_final:016x})",
                    sim.step_count() - (CYCLES - kill_cycle) as u64 * k,
                    kill_cycle as u64 * k,
                    sum
                ),
            );
            battery_leg(report, &format!("kill_at_cycle_{kill_cycle}_battery"), &sim);
        }
        Err(e) => report.record(
            &format!("kill_at_cycle_{kill_cycle}"),
            false,
            format!("resume failed: {e}"),
        ),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corruption drill: against a 4-checkpoint store, truncate and bit-flip
/// the newest file in place. Every injection must (a) make that file fail
/// to load with a typed corruption error and (b) leave `latest_valid`
/// falling back to the previous (intact) checkpoint.
fn corruption_leg(report: &mut Report, k: u64) {
    let dir = fresh_dir("corrupt");
    {
        let mut sim = builder(Some(&dir)).checkpoint_keep(8).build();
        sim.run_cycles(4);
    }
    let store = CheckpointStore::open(&dir, 8);
    let files = store.list().expect("list drill store");
    if files.len() != 4 {
        report.record(
            "corruption_setup",
            false,
            format!("expected 4 checkpoints, found {}", files.len()),
        );
        return;
    }
    let (newest_step, newest_path) = files.last().unwrap().clone();
    let prev_step = files[files.len() - 2].0;
    let original = std::fs::read(&newest_path).expect("read newest checkpoint");

    let mut undetected: Vec<String> = Vec::new();
    let mut bad_fallback = 0u64;
    let mut check = |mutated: &[u8], label: &str, report: &mut Report| {
        std::fs::write(&newest_path, mutated).expect("inject fault");
        report.injections += 1;
        match load_file(&newest_path) {
            Err(e) if e.is_corruption() || matches!(e, CkptError::BadVersion { .. }) => {
                report.detections += 1;
            }
            Err(e) => undetected.push(format!("{label}: untyped/unexpected error {e}")),
            Ok(_) => undetected.push(format!("{label}: loaded cleanly")),
        }
        match store.latest_valid() {
            Ok((_, snap)) if snap.step == prev_step => {}
            _ => bad_fallback += 1,
        }
    };

    // Truncations: every boundary the format cares about plus a stride
    // through the body. "No partial file is ever loadable."
    let mut cuts: Vec<usize> = vec![0, 1, 7, 8, 12, 56, 63, 64, 72, original.len() - 1];
    cuts.extend((0..original.len()).step_by(509));
    for cut in cuts {
        let cut = cut.min(original.len() - 1);
        check(&original[..cut], &format!("truncate_to_{cut}"), report);
    }

    // Bit flips: exhaustive over the 64-byte header, strided through the
    // payload (the exhaustive payload sweep lives in the proptest corpus).
    let mut flips: Vec<(usize, u8)> = Vec::new();
    for byte in 0..64usize {
        for bit in 0..8u8 {
            flips.push((byte, bit));
        }
    }
    for byte in (64..original.len()).step_by(97) {
        for bit in 0..8u8 {
            flips.push((byte, bit));
        }
    }
    for (byte, bit) in flips {
        let mut mutated = original.clone();
        mutated[byte] ^= 1 << bit;
        check(&mutated, &format!("flip_byte_{byte}_bit_{bit}"), report);
    }

    // Restore the original and confirm the store is whole again.
    std::fs::write(&newest_path, &original).expect("restore original");
    let healed = matches!(store.latest_valid(), Ok((_, snap)) if snap.step == newest_step);

    report.record(
        "corruption_detection",
        undetected.is_empty(),
        if undetected.is_empty() {
            "all injections detected with typed errors".to_string()
        } else {
            format!("{} undetected: {}", undetected.len(), undetected.join("; "))
        },
    );
    report.record(
        "corruption_fallback",
        bad_fallback == 0,
        format!(
            "latest_valid fell back to step {} on every injection ({} misses)",
            prev_step, bad_fallback
        ),
    );
    report.record(
        "store_healed",
        healed,
        format!("restored newest (step {newest_step}) loads again"),
    );
    let _ = k; // drill shape is cycle-based; step math handled by the engine
    let _ = std::fs::remove_dir_all(&dir);
}

/// Interrupted-write drill: a leftover `.tmp` (the kill-during-write
/// artifact the atomic rename protocol leaves behind) and foreign files
/// must be invisible to listing and recovery.
fn tmp_invisibility_leg(report: &mut Report) {
    let dir = fresh_dir("tmpfiles");
    {
        let mut sim = builder(Some(&dir)).build();
        sim.run_cycles(2);
    }
    // Simulate a crash mid-write: a partial temp file and assorted junk.
    std::fs::write(dir.join("ckpt-000000000099.ant.tmp"), b"partial write").unwrap();
    std::fs::write(dir.join("notes.txt"), b"not a checkpoint").unwrap();
    std::fs::write(dir.join("ckpt-garbage.ant"), b"bad name").unwrap();
    let store = CheckpointStore::open(&dir, 3);
    let names: Vec<u64> = store
        .list()
        .expect("list drill store")
        .iter()
        .map(|(s, _)| *s)
        .collect();
    let ok = names.len() == 2 && store.latest_valid().is_ok();
    report.record(
        "tmp_and_foreign_files_invisible",
        ok,
        format!("listed steps {names:?} with junk present"),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Full recovery drill: corrupt the newest checkpoint *permanently*, then
/// resume — recovery must fall back to the previous valid checkpoint and
/// still finish bitwise identical to golden.
fn recovery_leg(report: &mut Report, golden_final: u64, k: u64) {
    let dir = fresh_dir("recover");
    {
        let mut sim = builder(Some(&dir)).checkpoint_keep(8).build();
        sim.run_cycles(3);
    }
    let store = CheckpointStore::open(&dir, 8);
    let (newest_step, newest_path) = store
        .list()
        .expect("list drill store")
        .last()
        .unwrap()
        .clone();
    let mut bytes = std::fs::read(&newest_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&newest_path, &bytes).unwrap();

    match builder(None).resume_from(&dir) {
        Ok(mut sim) => {
            let resumed_step = sim.step_count();
            let want_step = (newest_step / k - 1) * k;
            sim.run_cycles(CYCLES - (resumed_step / k) as usize);
            let sum = state_checksum(&sim);
            report.record(
                "recover_from_previous_valid",
                resumed_step == want_step && sum == golden_final,
                format!(
                    "newest (step {newest_step}) corrupted; resumed at step {resumed_step} \
                     (want {want_step}), final {sum:016x} (want {golden_final:016x})"
                ),
            );
            battery_leg(report, "recover_from_previous_valid_battery", &sim);
        }
        Err(e) => report.record(
            "recover_from_previous_valid",
            false,
            format!("resume failed outright: {e}"),
        ),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let sys = drill_system();
    let k = sys.params.longrange_every.max(1) as u64;
    println!(
        "ckpt drill: {} atoms, {} nodes, {} threads, {} cycles ({} steps)",
        sys.n_atoms(),
        NODES,
        THREADS,
        CYCLES,
        CYCLES as u64 * k
    );

    let mut report = Report {
        legs: Vec::new(),
        injections: 0,
        detections: 0,
    };

    // Golden uninterrupted run (no checkpointing: also proves the store is
    // purely observational). The identity battery over its final state is
    // the reference every resumed leg's battery must match.
    let golden_final = {
        let mut sim = builder(None).build();
        sim.run_cycles(CYCLES);
        battery_leg(&mut report, "golden_battery", &sim);
        state_checksum(&sim)
    };
    println!("golden final checksum: {golden_final:016x}\n");

    for kill_cycle in [1usize, 3, 5] {
        kill_resume_leg(&mut report, kill_cycle, golden_final, k);
    }
    corruption_leg(&mut report, k);
    tmp_invisibility_leg(&mut report);
    recovery_leg(&mut report, golden_final, k);

    println!(
        "\ninjections: {} / detections: {}",
        report.injections, report.detections
    );
    report.write("results/CKPT_drill.json");

    let all_passed = report.legs.iter().all(|l| l.passed) && report.injections == report.detections;
    if !all_passed {
        eprintln!("ckpt drill FAILED");
        std::process::exit(1);
    }
    println!("ckpt drill passed: every fault detected, every recovery bitwise exact");
}
