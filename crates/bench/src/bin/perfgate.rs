//! CI perf-regression gate over the scaling benchmark artifacts.
//!
//! Compares the current `results/BENCH_scaling.json` and
//! `results/TRACE_scaling.json` (both produced by the `scaling` binary)
//! against the checked-in `results/PERF_baseline.json`, with a tolerance
//! tier per kind of quantity:
//!
//! * **exact** — message/byte/span counts, link counts, and state
//!   checksums: pure functions of the simulation configuration, so any
//!   drift is a real behavior change (or a broken determinism claim).
//! * **modeled** (relative 1e-6) — modeled communication times: f64
//!   arithmetic over the exact counts; the slack only absorbs formatting.
//! * **measured** (factor 50) — host wall-clock: legitimately varies
//!   between machines and runs, so only catastrophic slowdowns gate.
//!
//! Two additions on top of the baseline diff: the smoke geometry's
//! single-rank step time must stay under an absolute checked-in ceiling
//! ([`MS_PER_STEP_CEILING`]), and every passing gate run appends its
//! measured step times to `results/PERF_trend.json` so the perf
//! trajectory across PRs stays reviewable.
//!
//! `cargo run --release -p anton-bench --bin perfgate` — gate (exit 1 on
//! violation); `--update` re-snapshots the baseline from the current
//! artifacts after an intentional change.

use anton_bench::json::Json;

const BENCH_PATH: &str = "results/BENCH_scaling.json";
const TRACE_PATH: &str = "results/TRACE_scaling.json";
const BASELINE_PATH: &str = "results/PERF_baseline.json";
const TREND_PATH: &str = "results/PERF_trend.json";

const MODELED_REL_TOL: f64 = 1e-6;
const MEASURED_FACTOR: f64 = 50.0;

/// Absolute ceiling on the smoke waterbox's single-rank step time. The
/// persistent match cache plus the fused PPIP segment tables landed the
/// reference machine at ~15-17 ms/step; the gap absorbs slower CI hosts
/// while still failing loudly if the pipeline falls back off the cached
/// batched path (~24 ms/step) or the fused tables regress (~21 ms/step).
/// Mirrored by the inline assert in .github/workflows/ci.yml — keep in
/// lockstep.
const MS_PER_STEP_CEILING: f64 = 20.0;
/// Atom count of the smoke geometry the ceiling is calibrated for.
const CEILING_ATOMS: u64 = 1020;

fn read_json(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run the scaling benchmark first)"));
    Json::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

/// Collects violations instead of failing fast, so one run reports every
/// drifted quantity.
#[derive(Default)]
struct Gate {
    checks: usize,
    failures: Vec<String>,
}

impl Gate {
    fn field<'a>(&mut self, ctx: &str, obj: &'a Json, key: &str) -> Option<&'a Json> {
        let v = obj.get(key);
        if v.is_none() {
            self.failures.push(format!("{ctx}: missing field '{key}'"));
        }
        v
    }

    fn exact_u64(&mut self, ctx: &str, key: &str, base: &Json, cur: &Json) {
        self.checks += 1;
        let (b, c) = (
            self.field(ctx, base, key).and_then(Json::as_u64),
            self.field(ctx, cur, key).and_then(Json::as_u64),
        );
        if let (Some(b), Some(c)) = (b, c) {
            if b != c {
                self.failures.push(format!(
                    "{ctx}: {key} changed exactly: baseline {b}, current {c}"
                ));
            }
        }
    }

    fn exact_str(&mut self, ctx: &str, key: &str, base: &Json, cur: &Json) {
        self.checks += 1;
        let (b, c) = (
            self.field(ctx, base, key).and_then(Json::as_str),
            self.field(ctx, cur, key).and_then(Json::as_str),
        );
        if let (Some(b), Some(c)) = (b, c) {
            if b != c {
                self.failures
                    .push(format!("{ctx}: {key} changed: baseline {b}, current {c}"));
            }
        }
    }

    fn modeled(&mut self, ctx: &str, key: &str, base: &Json, cur: &Json) {
        self.checks += 1;
        let (b, c) = (
            self.field(ctx, base, key).and_then(Json::as_f64),
            self.field(ctx, cur, key).and_then(Json::as_f64),
        );
        if let (Some(b), Some(c)) = (b, c) {
            let scale = b.abs().max(c.abs()).max(1e-12);
            if (b - c).abs() > MODELED_REL_TOL * scale {
                self.failures.push(format!(
                    "{ctx}: modeled {key} drifted beyond {MODELED_REL_TOL:e} rel: \
                     baseline {b}, current {c}"
                ));
            }
        }
    }

    fn measured(&mut self, ctx: &str, key: &str, base: &Json, cur: &Json) {
        self.checks += 1;
        let (b, c) = (
            self.field(ctx, base, key).and_then(Json::as_f64),
            self.field(ctx, cur, key).and_then(Json::as_f64),
        );
        if let (Some(b), Some(c)) = (b, c) {
            if b > 0.0 && c > b * MEASURED_FACTOR {
                self.failures.push(format!(
                    "{ctx}: measured {key} regressed more than {MEASURED_FACTOR}x: \
                     baseline {b}, current {c}"
                ));
            }
        }
    }
}

/// Find the row of `rows` with the same (nodes, threads) as `base_row`.
fn matching_row<'a>(rows: &'a [Json], base_row: &Json) -> Option<&'a Json> {
    let nodes = base_row.get("nodes")?.as_u64()?;
    let threads = base_row.get("threads")?.as_u64()?;
    rows.iter().find(|r| {
        r.get("nodes").and_then(Json::as_u64) == Some(nodes)
            && r.get("threads").and_then(Json::as_u64) == Some(threads)
    })
}

fn gate_bench(g: &mut Gate, base: &Json, cur: &Json) {
    g.exact_u64("bench", "atoms", base, cur);
    g.exact_u64("bench", "steps_per_row", base, cur);
    g.checks += 1;
    if cur.get("invariant").and_then(Json::as_bool) != Some(true) {
        g.failures
            .push("bench: parallel invariance flag is not true".into());
    }
    let base_rows = base.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
    let cur_rows = cur.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
    for b in base_rows {
        let nodes = b.get("nodes").and_then(Json::as_u64).unwrap_or(0);
        let threads = b.get("threads").and_then(Json::as_u64).unwrap_or(0);
        let ctx = format!("bench[{nodes}n/{threads}t]");
        let Some(c) = matching_row(cur_rows, b) else {
            g.failures
                .push(format!("{ctx}: row missing from current run"));
            continue;
        };
        g.exact_str(&ctx, "state_checksum", b, c);
        g.exact_u64(&ctx, "links_per_rank", b, c);
        for key in ["match_candidates", "match_pairs", "match_batches"] {
            g.exact_u64(&ctx, key, b, c);
        }
        for key in [
            "kb_per_step_rank",
            "mean_hops",
            "modeled_comm_us",
            "fft_messages_per_rank_lr_step",
            "fft_kb_per_rank_lr_step",
            "mesh_halo_kb_per_rank_lr_step",
        ] {
            g.modeled(&ctx, key, b, c);
        }
        for key in ["ms_per_step", "lr_ms_per_eval"] {
            g.measured(&ctx, key, b, c);
        }
    }
    // Absolute ceiling on the smoke geometry's single-rank step time, on
    // top of the baseline-relative measured tier: the HTIS-shaped batch
    // pipeline's headline speedup must not silently erode.
    if cur.get("atoms").and_then(Json::as_u64) == Some(CEILING_ATOMS) {
        g.checks += 1;
        let smoke = cur_rows.iter().find(|r| {
            r.get("nodes").and_then(Json::as_u64) == Some(1)
                && r.get("threads").and_then(Json::as_u64) == Some(1)
        });
        match smoke
            .and_then(|r| r.get("ms_per_step"))
            .and_then(Json::as_f64)
        {
            Some(ms) if ms <= MS_PER_STEP_CEILING => {}
            Some(ms) => g.failures.push(format!(
                "bench[1n/1t]: ms_per_step {ms} exceeds the {MS_PER_STEP_CEILING} ceiling"
            )),
            None => g
                .failures
                .push("bench[1n/1t]: no ms_per_step for the ceiling check".into()),
        }
    }
}

fn gate_trace(g: &mut Gate, base: &Json, cur: &Json) {
    g.exact_u64("trace", "atoms", base, cur);
    g.exact_u64("trace", "cycles_per_row", base, cur);
    let base_rows = base.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
    let cur_rows = cur.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
    for b in base_rows {
        let nodes = b.get("nodes").and_then(Json::as_u64).unwrap_or(0);
        let threads = b.get("threads").and_then(Json::as_u64).unwrap_or(0);
        let ctx = format!("trace[{nodes}n/{threads}t]");
        let Some(c) = matching_row(cur_rows, b) else {
            g.failures
                .push(format!("{ctx}: row missing from current run"));
            continue;
        };
        g.exact_str(&ctx, "state_checksum", b, c);
        let base_phases = b.get("phases").and_then(Json::as_arr).unwrap_or(&[]);
        let cur_phases = c.get("phases").and_then(Json::as_arr).unwrap_or(&[]);
        for bp in base_phases {
            let name = bp.get("phase").and_then(Json::as_str).unwrap_or("?");
            let pctx = format!("{ctx}.{name}");
            let Some(cp) = cur_phases
                .iter()
                .find(|p| p.get("phase").and_then(Json::as_str) == Some(name))
            else {
                g.failures.push(format!("{pctx}: phase row missing"));
                continue;
            };
            g.exact_u64(&pctx, "spans", bp, cp);
            g.exact_u64(&pctx, "messages", bp, cp);
            g.exact_u64(&pctx, "bytes", bp, cp);
            g.modeled(&pctx, "modeled_us", bp, cp);
            g.measured(&pctx, "wall_us", bp, cp);
        }
    }
    // Checkpoint cost of the traced 8-node row: the snapshot encoding is
    // deterministic, so file count and bytes written gate exactly;
    // serialize+write time is host wall-clock and gates at the measured
    // tier only.
    match (base.get("checkpoint"), cur.get("checkpoint")) {
        (Some(b), Some(c)) => {
            g.exact_u64("trace.checkpoint", "files", b, c);
            g.exact_u64("trace.checkpoint", "bytes_written", b, c);
            g.measured("trace.checkpoint", "serialize_us", b, c);
        }
        _ => g
            .failures
            .push("trace: missing 'checkpoint' section".into()),
    }
}

/// Append this run's measured step times to the checked-in trend log, so
/// the perf trajectory across PRs is a first-class artifact instead of
/// archaeology over old baselines. One entry per gate run; rows in fixed
/// (nodes, threads) benchmark order; key order and formatting fixed, so
/// regenerating a run appends a byte-identical entry.
fn append_trend(bench: &Json) {
    let atoms = bench.get("atoms").and_then(Json::as_u64).unwrap_or(0);
    let steps = bench
        .get("steps_per_row")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let rows = bench.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
    let mut entry = format!("{{\"atoms\": {atoms}, \"steps_per_row\": {steps}, \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let get_u = |k: &str| r.get(k).and_then(Json::as_u64).unwrap_or(0);
        let get_f = |k: &str| r.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        entry.push_str(&format!(
            "{}{{\"nodes\": {}, \"threads\": {}, \"ms_per_step\": {:.6}, \
             \"lr_ms_per_eval\": {:.6}}}",
            if i == 0 { "" } else { ", " },
            get_u("nodes"),
            get_u("threads"),
            get_f("ms_per_step"),
            get_f("lr_ms_per_eval"),
        ));
    }
    entry.push_str("]}");

    let empty = "{\n  \"schema\": \"perf-trend/v1\",\n  \"runs\": [\n  ]\n}\n".to_string();
    let current = std::fs::read_to_string(TREND_PATH).unwrap_or(empty);
    let n_runs = Json::parse(&current)
        .ok()
        .and_then(|j| j.get("runs").and_then(Json::as_arr).map(<[Json]>::len))
        .unwrap_or_else(|| panic!("{TREND_PATH}: not a perf-trend document"));
    let tail = "\n  ]\n}";
    let Some(head) = current.trim_end().strip_suffix(tail) else {
        panic!("{TREND_PATH}: unrecognized layout; regenerate it");
    };
    let sep = if n_runs == 0 { "" } else { "," };
    let next = format!("{head}{sep}\n    {entry}{tail}\n");
    Json::parse(&next).unwrap_or_else(|e| panic!("internal: bad trend JSON produced: {e}"));
    std::fs::write(TREND_PATH, &next).unwrap_or_else(|e| panic!("cannot write {TREND_PATH}: {e}"));
    println!("appended run #{} to {TREND_PATH}", n_runs + 1);
}

fn update_baseline() {
    let bench = std::fs::read_to_string(BENCH_PATH)
        .unwrap_or_else(|e| panic!("cannot read {BENCH_PATH}: {e}"));
    let trace = std::fs::read_to_string(TRACE_PATH)
        .unwrap_or_else(|e| panic!("cannot read {TRACE_PATH}: {e}"));
    // Both inputs are themselves JSON documents; the baseline just embeds
    // them under one object (validated on the way in).
    Json::parse(&bench).unwrap_or_else(|e| panic!("invalid {BENCH_PATH}: {e}"));
    Json::parse(&trace).unwrap_or_else(|e| panic!("invalid {TRACE_PATH}: {e}"));
    let s = format!(
        "{{\n\"schema\": \"perf-baseline/v1\",\n\"bench\":\n{bench},\n\"trace\":\n{trace}}}\n",
        bench = bench.trim_end(),
        trace = trace.trim_end(),
    );
    std::fs::write(BASELINE_PATH, s)
        .unwrap_or_else(|e| panic!("cannot write {BASELINE_PATH}: {e}"));
    println!("wrote {BASELINE_PATH}");
}

fn main() {
    if std::env::args().any(|a| a == "--update") {
        update_baseline();
        return;
    }
    let baseline = read_json(BASELINE_PATH);
    let bench = read_json(BENCH_PATH);
    let trace = read_json(TRACE_PATH);

    let mut g = Gate::default();
    match (baseline.get("bench"), baseline.get("trace")) {
        (Some(bb), Some(bt)) => {
            gate_bench(&mut g, bb, &bench);
            gate_trace(&mut g, bt, &trace);
        }
        _ => g
            .failures
            .push(format!("{BASELINE_PATH}: missing 'bench'/'trace' sections")),
    }

    if g.failures.is_empty() {
        println!(
            "perf gate: {} checks against {BASELINE_PATH} — all passed",
            g.checks
        );
        append_trend(&bench);
    } else {
        eprintln!(
            "perf gate: {} of {} checks FAILED:",
            g.failures.len(),
            g.checks
        );
        for f in &g.failures {
            eprintln!("  {f}");
        }
        eprintln!("(after an intentional change: re-run scaling, then perfgate --update)");
        std::process::exit(1);
    }
}
