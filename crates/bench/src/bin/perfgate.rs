//! CI perf-regression gate over the scaling benchmark artifacts.
//!
//! Compares the current `results/BENCH_scaling.json` and
//! `results/TRACE_scaling.json` (both produced by the `scaling` binary)
//! against the checked-in `results/PERF_baseline.json`, with a tolerance
//! tier per kind of quantity:
//!
//! * **exact** — message/byte/span counts, link counts, and state
//!   checksums: pure functions of the simulation configuration, so any
//!   drift is a real behavior change (or a broken determinism claim).
//! * **modeled** (relative 1e-6) — modeled communication times: f64
//!   arithmetic over the exact counts; the slack only absorbs formatting.
//! * **measured** (factor 50) — host wall-clock: legitimately varies
//!   between machines and runs, so only catastrophic slowdowns gate.
//!
//! `cargo run --release -p anton-bench --bin perfgate` — gate (exit 1 on
//! violation); `--update` re-snapshots the baseline from the current
//! artifacts after an intentional change.

use anton_bench::json::Json;

const BENCH_PATH: &str = "results/BENCH_scaling.json";
const TRACE_PATH: &str = "results/TRACE_scaling.json";
const BASELINE_PATH: &str = "results/PERF_baseline.json";

const MODELED_REL_TOL: f64 = 1e-6;
const MEASURED_FACTOR: f64 = 50.0;

fn read_json(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run the scaling benchmark first)"));
    Json::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

/// Collects violations instead of failing fast, so one run reports every
/// drifted quantity.
#[derive(Default)]
struct Gate {
    checks: usize,
    failures: Vec<String>,
}

impl Gate {
    fn field<'a>(&mut self, ctx: &str, obj: &'a Json, key: &str) -> Option<&'a Json> {
        let v = obj.get(key);
        if v.is_none() {
            self.failures.push(format!("{ctx}: missing field '{key}'"));
        }
        v
    }

    fn exact_u64(&mut self, ctx: &str, key: &str, base: &Json, cur: &Json) {
        self.checks += 1;
        let (b, c) = (
            self.field(ctx, base, key).and_then(Json::as_u64),
            self.field(ctx, cur, key).and_then(Json::as_u64),
        );
        if let (Some(b), Some(c)) = (b, c) {
            if b != c {
                self.failures.push(format!(
                    "{ctx}: {key} changed exactly: baseline {b}, current {c}"
                ));
            }
        }
    }

    fn exact_str(&mut self, ctx: &str, key: &str, base: &Json, cur: &Json) {
        self.checks += 1;
        let (b, c) = (
            self.field(ctx, base, key).and_then(Json::as_str),
            self.field(ctx, cur, key).and_then(Json::as_str),
        );
        if let (Some(b), Some(c)) = (b, c) {
            if b != c {
                self.failures
                    .push(format!("{ctx}: {key} changed: baseline {b}, current {c}"));
            }
        }
    }

    fn modeled(&mut self, ctx: &str, key: &str, base: &Json, cur: &Json) {
        self.checks += 1;
        let (b, c) = (
            self.field(ctx, base, key).and_then(Json::as_f64),
            self.field(ctx, cur, key).and_then(Json::as_f64),
        );
        if let (Some(b), Some(c)) = (b, c) {
            let scale = b.abs().max(c.abs()).max(1e-12);
            if (b - c).abs() > MODELED_REL_TOL * scale {
                self.failures.push(format!(
                    "{ctx}: modeled {key} drifted beyond {MODELED_REL_TOL:e} rel: \
                     baseline {b}, current {c}"
                ));
            }
        }
    }

    fn measured(&mut self, ctx: &str, key: &str, base: &Json, cur: &Json) {
        self.checks += 1;
        let (b, c) = (
            self.field(ctx, base, key).and_then(Json::as_f64),
            self.field(ctx, cur, key).and_then(Json::as_f64),
        );
        if let (Some(b), Some(c)) = (b, c) {
            if b > 0.0 && c > b * MEASURED_FACTOR {
                self.failures.push(format!(
                    "{ctx}: measured {key} regressed more than {MEASURED_FACTOR}x: \
                     baseline {b}, current {c}"
                ));
            }
        }
    }
}

/// Find the row of `rows` with the same (nodes, threads) as `base_row`.
fn matching_row<'a>(rows: &'a [Json], base_row: &Json) -> Option<&'a Json> {
    let nodes = base_row.get("nodes")?.as_u64()?;
    let threads = base_row.get("threads")?.as_u64()?;
    rows.iter().find(|r| {
        r.get("nodes").and_then(Json::as_u64) == Some(nodes)
            && r.get("threads").and_then(Json::as_u64) == Some(threads)
    })
}

fn gate_bench(g: &mut Gate, base: &Json, cur: &Json) {
    g.exact_u64("bench", "atoms", base, cur);
    g.exact_u64("bench", "steps_per_row", base, cur);
    g.checks += 1;
    if cur.get("invariant").and_then(Json::as_bool) != Some(true) {
        g.failures
            .push("bench: parallel invariance flag is not true".into());
    }
    let base_rows = base.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
    let cur_rows = cur.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
    for b in base_rows {
        let nodes = b.get("nodes").and_then(Json::as_u64).unwrap_or(0);
        let threads = b.get("threads").and_then(Json::as_u64).unwrap_or(0);
        let ctx = format!("bench[{nodes}n/{threads}t]");
        let Some(c) = matching_row(cur_rows, b) else {
            g.failures
                .push(format!("{ctx}: row missing from current run"));
            continue;
        };
        g.exact_str(&ctx, "state_checksum", b, c);
        g.exact_u64(&ctx, "links_per_rank", b, c);
        for key in [
            "kb_per_step_rank",
            "mean_hops",
            "modeled_comm_us",
            "fft_messages_per_rank_lr_step",
            "fft_kb_per_rank_lr_step",
            "mesh_halo_kb_per_rank_lr_step",
        ] {
            g.modeled(&ctx, key, b, c);
        }
        for key in ["ms_per_step", "lr_ms_per_eval"] {
            g.measured(&ctx, key, b, c);
        }
    }
}

fn gate_trace(g: &mut Gate, base: &Json, cur: &Json) {
    g.exact_u64("trace", "atoms", base, cur);
    g.exact_u64("trace", "cycles_per_row", base, cur);
    let base_rows = base.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
    let cur_rows = cur.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
    for b in base_rows {
        let nodes = b.get("nodes").and_then(Json::as_u64).unwrap_or(0);
        let threads = b.get("threads").and_then(Json::as_u64).unwrap_or(0);
        let ctx = format!("trace[{nodes}n/{threads}t]");
        let Some(c) = matching_row(cur_rows, b) else {
            g.failures
                .push(format!("{ctx}: row missing from current run"));
            continue;
        };
        g.exact_str(&ctx, "state_checksum", b, c);
        let base_phases = b.get("phases").and_then(Json::as_arr).unwrap_or(&[]);
        let cur_phases = c.get("phases").and_then(Json::as_arr).unwrap_or(&[]);
        for bp in base_phases {
            let name = bp.get("phase").and_then(Json::as_str).unwrap_or("?");
            let pctx = format!("{ctx}.{name}");
            let Some(cp) = cur_phases
                .iter()
                .find(|p| p.get("phase").and_then(Json::as_str) == Some(name))
            else {
                g.failures.push(format!("{pctx}: phase row missing"));
                continue;
            };
            g.exact_u64(&pctx, "spans", bp, cp);
            g.exact_u64(&pctx, "messages", bp, cp);
            g.exact_u64(&pctx, "bytes", bp, cp);
            g.modeled(&pctx, "modeled_us", bp, cp);
        }
    }
    // Checkpoint cost of the traced 8-node row: the snapshot encoding is
    // deterministic, so file count and bytes written gate exactly;
    // serialize+write time is host wall-clock and gates at the measured
    // tier only.
    match (base.get("checkpoint"), cur.get("checkpoint")) {
        (Some(b), Some(c)) => {
            g.exact_u64("trace.checkpoint", "files", b, c);
            g.exact_u64("trace.checkpoint", "bytes_written", b, c);
            g.measured("trace.checkpoint", "serialize_us", b, c);
        }
        _ => g
            .failures
            .push("trace: missing 'checkpoint' section".into()),
    }
}

fn update_baseline() {
    let bench = std::fs::read_to_string(BENCH_PATH)
        .unwrap_or_else(|e| panic!("cannot read {BENCH_PATH}: {e}"));
    let trace = std::fs::read_to_string(TRACE_PATH)
        .unwrap_or_else(|e| panic!("cannot read {TRACE_PATH}: {e}"));
    // Both inputs are themselves JSON documents; the baseline just embeds
    // them under one object (validated on the way in).
    Json::parse(&bench).unwrap_or_else(|e| panic!("invalid {BENCH_PATH}: {e}"));
    Json::parse(&trace).unwrap_or_else(|e| panic!("invalid {TRACE_PATH}: {e}"));
    let s = format!(
        "{{\n\"schema\": \"perf-baseline/v1\",\n\"bench\":\n{bench},\n\"trace\":\n{trace}}}\n",
        bench = bench.trim_end(),
        trace = trace.trim_end(),
    );
    std::fs::write(BASELINE_PATH, s)
        .unwrap_or_else(|e| panic!("cannot write {BASELINE_PATH}: {e}"));
    println!("wrote {BASELINE_PATH}");
}

fn main() {
    if std::env::args().any(|a| a == "--update") {
        update_baseline();
        return;
    }
    let baseline = read_json(BASELINE_PATH);
    let bench = read_json(BENCH_PATH);
    let trace = read_json(TRACE_PATH);

    let mut g = Gate::default();
    match (baseline.get("bench"), baseline.get("trace")) {
        (Some(bb), Some(bt)) => {
            gate_bench(&mut g, bb, &bench);
            gate_trace(&mut g, bt, &trace);
        }
        _ => g
            .failures
            .push(format!("{BASELINE_PATH}: missing 'bench'/'trace' sections")),
    }

    if g.failures.is_empty() {
        println!(
            "perf gate: {} checks against {BASELINE_PATH} — all passed",
            g.checks
        );
    } else {
        eprintln!(
            "perf gate: {} of {} checks FAILED:",
            g.failures.len(),
            g.checks
        );
        for f in &g.failures {
            eprintln!("  {f}");
        }
        eprintln!("(after an intentional change: re-run scaling, then perfgate --update)");
        std::process::exit(1);
    }
}
