//! Regenerate the deterministic paper-artifact CSVs.
//!
//! `cargo run -p anton-bench --bin export_tables`
//!
//! Reads the checked-in `results/BENCH_scaling.json`,
//! `results/TRACE_scaling.json`, and `results/FLEET_drill.json`, renders
//! every `results/TABLE_*.csv`
//! (schema `anton-tables/v1`), and prints what changed. The rendering is
//! byte-deterministic — integer-only formatting over model outputs and
//! exact counters — so CI regenerates the files and fails on any drift
//! (`git diff --exit-code results/TABLE_*.csv`).

use anton_bench::artifacts::{all_tables, results_dir};
use anton_bench::json::Json;
use std::fs;

fn main() {
    let dir = results_dir();
    let load = |name: &str| -> Json {
        let path = dir.join(name);
        let text =
            fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        Json::parse(&text).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()))
    };
    let bench = load("BENCH_scaling.json");
    let trace = load("TRACE_scaling.json");
    let fleet = load("FLEET_drill.json");
    let tables =
        all_tables(&bench, &trace, &fleet).unwrap_or_else(|e| panic!("building tables: {e}"));
    for t in &tables {
        let path = dir.join(format!("{}.csv", t.name));
        let rendered = t.render_csv();
        let previous = fs::read_to_string(&path).ok();
        let status = match &previous {
            None => "created",
            Some(p) if *p == rendered => "unchanged",
            Some(_) => "UPDATED",
        };
        fs::write(&path, &rendered).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("{status:>9}  {}  ({} rows)", path.display(), t.rows.len());
    }
}
