//! Ablations of the paper's design choices (DESIGN.md's "co-design" story):
//!
//! 1. Subboxes → match efficiency → *measured* PPIP utilization (the chain
//!    from Table 3 through §3.2.1's eight-match-units argument).
//! 2. NT method vs traditional half-shell: import volume → modeled
//!    communication time at several parallelism levels.
//! 3. GSE parameter trade (the Table 2 pivot): larger cutoff + coarser mesh
//!    vs smaller cutoff + finer mesh on both architectures.
//! 4. Fixed-point vs f64 FFT accuracy (what the flexible subsystem's 32-bit
//!    arithmetic costs).
//!
//! `cargo run --release -p anton-bench --bin ablations`

use anton_fft::fixed::{FxComplex, FxFft};
use anton_fft::{Complex, Fft1d};
use anton_machine::perf::dhfr_stats;
use anton_machine::{HtisSim, MachineConfig, PerfModel};
use anton_nt::{ImportRegions, MatchEfficiency};

fn main() {
    // ---- 1. Subboxes → utilization ----
    anton_bench::header(
        "Ablation 1 — subbox division → match efficiency → PPIP utilization (32 Å box, 13 Å cutoff)",
        &["subboxes", "match eff", "PPIP utilization (HTIS sim)"],
    );
    let sim = HtisSim::default();
    for s in [1usize, 2, 4] {
        let eff = MatchEfficiency::new(32.0, s, 13.0).analytic();
        let run = sim.run(2_000_000, eff, 11);
        println!(
            "{:>8} | {:>8.1}% | {:>6.1}%",
            s * s * s,
            eff * 100.0,
            run.utilization * 100.0
        );
    }
    println!("(§3.2.1: PPIPs approach full utilization once ≥1 matched pair/cycle arrives)");

    // ---- 2. NT vs half-shell import at increasing parallelism ----
    anton_bench::header(
        "Ablation 2 — NT vs half-shell import volume (13 Å cutoff)",
        &[
            "nodes for 62 Å box",
            "box edge",
            "NT import (Å³)",
            "half-shell (Å³)",
            "NT saves",
        ],
    );
    for nodes in [64usize, 512, 4096] {
        let edge = 62.2 / (nodes as f64).cbrt();
        let r = ImportRegions::new(edge, 13.0);
        println!(
            "{:>18} | {:>7.2} | {:>13.0} | {:>14.0} | {:>6.0}%",
            nodes,
            edge,
            r.nt_total_volume(),
            r.half_shell_volume(),
            100.0 * (1.0 - r.nt_total_volume() / r.half_shell_volume())
        );
    }

    // ---- 3. The electrostatics parameter pivot on both architectures ----
    anton_bench::header(
        "Ablation 3 — (cutoff, mesh) trade on Anton vs a 1-node machine (model)",
        &["config", "Anton 512 (µs/step)", "1 node (µs/step)"],
    );
    let m512 = PerfModel::anton_512();
    let m1 = PerfModel::new(MachineConfig::with_nodes(1));
    for (rc, mesh) in [(9.0, 64usize), (13.0, 32)] {
        let s = dhfr_stats(rc, mesh);
        println!(
            "{:>4} Å / {:>2}³ | {:>19.1} | {:>16.0}",
            rc,
            mesh,
            m512.breakdown(&s).lr_step_us,
            m1.breakdown(&s).lr_step_us
        );
    }
    println!(
        "(a 1-node Anton still has PPIPs, so it also prefers the large cutoff;\n\
         the x86 engine — where the same pivot costs ~2x — is profiled by the table2 binary)"
    );

    // ---- 4. Fixed-point FFT accuracy ----
    anton_bench::header(
        "Ablation 4 — fixed-point FFT error vs f64 (relative rms, random Q40 data)",
        &["length", "rel rms error"],
    );
    for n in [16usize, 32, 64] {
        let data: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761) % 1000) as f64 / 500.0 - 1.0)
            .collect();
        let mut fx: Vec<FxComplex> = data
            .iter()
            .map(|&x| FxComplex::new((x * (1i64 << 40) as f64) as i64, 0))
            .collect();
        FxFft::new(n).forward_scaled(&mut fx);
        let mut fl: Vec<Complex> = data.iter().map(|&x| Complex::new(x, 0.0)).collect();
        Fft1d::new(n).forward(&mut fl);
        let scale = 1.0 / n as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for (a, b) in fx.iter().zip(&fl) {
            let av = Complex::new(
                a.re as f64 / (1i64 << 40) as f64,
                a.im as f64 / (1i64 << 40) as f64,
            );
            let bv = b.scale(scale);
            num += (av - bv).norm2();
            den += bv.norm2();
        }
        println!("{n:>6} | {:>12.3e}", (num / den).sqrt());
    }
}
