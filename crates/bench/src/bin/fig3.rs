//! Figure 3: import regions of the NT method vs the traditional half-shell
//! method, plus the symmetric spreading-plate variant.
//!
//! `cargo run -p anton-bench --bin fig3`

use anton_nt::ImportRegions;

fn main() {
    anton_bench::header(
        "Figure 3 — import-region volumes (Å³), 13 Å cutoff",
        &[
            "box side",
            "NT tower",
            "NT plate",
            "NT total",
            "half-shell",
            "NT/half-shell",
            "spread plate",
        ],
    );
    for b in [4.0f64, 8.0, 13.0, 16.0, 26.0, 32.0] {
        let r = ImportRegions::new(b, 13.0);
        println!(
            "{:>8.0} | {:>9.0} | {:>9.0} | {:>9.0} | {:>10.0} | {:>12.2} | {:>11.0}",
            b,
            r.nt_tower_volume(),
            r.nt_plate_volume(),
            r.nt_total_volume(),
            r.half_shell_volume(),
            r.nt_total_volume() / r.half_shell_volume(),
            r.spreading_plate_volume(),
        );
    }
    println!(
        "\nThe NT advantage grows as boxes shrink relative to the cutoff — \
         \"an advantage that grows asymptotically as the level of parallelism increases\" (§3.2.1)."
    );

    // Voxel-integrated cross-check at one size.
    let r = ImportRegions::new(8.0, 13.0);
    let vox_nt = r.measure(|p| r.nt_tower(p) || r.nt_plate(p), 120);
    println!(
        "voxel cross-check (8 Å box): NT total {:.0} Å³ analytic vs {:.0} Å³ voxelized",
        r.nt_total_volume(),
        vox_nt
    );
}
