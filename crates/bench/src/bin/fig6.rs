//! Figure 6: backbone amide S² order parameters of a GB3-like protein from
//! two independent engines (Anton fixed-point vs reference double-precision)
//! and a synthetic "NMR" profile.
//!
//! `cargo run -p anton-bench --bin fig6 [--full]`
//!
//! The paper compares 1 µs trajectories; on one core we sample far shorter
//! windows (default ~2,000 frames of a 56-residue chain in vacuum-box
//! conditions), which captures fast librations only — S² values sit higher
//! than the paper's, but the three-way comparison structure is the point.

use anton_analysis::kabsch::superpose;
use anton_analysis::order_parameters;
use anton_core::AntonSimulation;
use anton_geometry::{PeriodicBox, Vec3};
use anton_refmd::{RefSimulation, Thermostat};
use anton_systems::protein::{build_chain, chain_topology};
use anton_systems::spec::{RunParams, System};
use anton_systems::velocities::init_velocities;
use rand::{Rng, SeedableRng};

const N_RES: usize = 56;

fn gb3_like_system() -> (System, Vec<(u32, u32)>) {
    let chain = build_chain(N_RES, Vec3::splat(20.0), 8.5, 5.8);
    let nh = chain.nh_pairs.clone();
    let top = chain_topology(&chain, 3.15, 0.152);
    let sys = System {
        name: "GB3-like".into(),
        pbox: PeriodicBox::cubic(40.0),
        topology: top,
        positions: chain.positions,
        params: RunParams::paper(9.0, 16),
    };
    sys.validate().unwrap();
    (sys, nh)
}

/// Collect aligned N–H unit vectors over a trajectory driven by `advance`.
fn collect_frames(
    mut advance: impl FnMut() -> Vec<Vec3>,
    nh: &[(u32, u32)],
    backbone: &[usize],
    reference: &[Vec3],
    frames: usize,
) -> Vec<Vec<Vec3>> {
    let mut out = Vec::with_capacity(frames);
    for _ in 0..frames {
        let pos = advance();
        // Align on backbone nitrogens to remove global tumbling.
        let mobile: Vec<Vec3> = backbone.iter().map(|&i| pos[i]).collect();
        let rot = anton_analysis::kabsch_rotation(&mobile, reference);
        out.push(
            nh.iter()
                .map(|&(n, h)| rot.mul_vec(pos[h as usize] - pos[n as usize]))
                .collect(),
        );
    }
    out
}

fn main() {
    let full = anton_bench::full_mode();
    let frames = if full { 12_000 } else { 1_500 };
    let stride = 2; // cycles between frames

    let (sys, nh) = gb3_like_system();
    let backbone: Vec<usize> = nh.iter().map(|&(n, _)| n as usize).collect();
    let reference: Vec<Vec3> = backbone.iter().map(|&i| sys.positions[i]).collect();

    // --- Anton engine trajectory.
    let mut anton = AntonSimulation::builder(sys.clone())
        .velocities_from_temperature(300.0, 41)
        .thermostat(anton_core::ThermostatKind::Berendsen {
            target_k: 300.0,
            tau_fs: 100.0,
        })
        .build();
    anton.run_cycles(100); // equilibrate
    let anton_frames = collect_frames(
        || {
            anton.run_cycles(stride);
            anton.positions_f64()
        },
        &nh,
        &backbone,
        &reference,
        frames,
    );
    let s2_anton = order_parameters(&anton_frames);

    // --- Reference engine trajectory (independent seed → independent
    // trajectory, like the paper's Anton-vs-Desmond comparison).
    let vel = init_velocities(&sys.topology, 300.0, 43);
    let mut refsim = RefSimulation::new(
        sys.clone(),
        vel,
        Thermostat::Berendsen {
            target_k: 300.0,
            tau_fs: 100.0,
        },
    );
    for _ in 0..100 {
        refsim.run_cycle();
    }
    let ref_frames = collect_frames(
        || {
            for _ in 0..stride {
                refsim.run_cycle();
            }
            refsim.positions.clone()
        },
        &nh,
        &backbone,
        &reference,
        frames,
    );
    let s2_ref = order_parameters(&ref_frames);

    // --- Synthetic "NMR" profile: the reference-engine values plus
    // measurement noise (substitution for Hall & Fushman 2006; DESIGN.md §2).
    let mut rng = rand::rngs::SmallRng::seed_from_u64(4242);
    let s2_nmr: Vec<f64> = s2_ref
        .iter()
        .map(|&s| (s + rng.gen_range(-0.03..0.03)).clamp(0.0, 1.0))
        .collect();

    anton_bench::header(
        "Figure 6 — backbone amide S² order parameters (GB3-like)",
        &["residue", "Anton", "reference", "\"NMR\""],
    );
    for i in 0..N_RES {
        println!(
            "{:>7} | {:>6.3} | {:>9.3} | {:>6.3}",
            i + 1,
            s2_anton[i],
            s2_ref[i],
            s2_nmr[i]
        );
    }

    // Agreement summary (the paper's claim: the two simulation estimates are
    // highly similar; both track experiment).
    let rmsd = |a: &[f64], b: &[f64]| {
        (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt()
    };
    println!(
        "\nS² rms difference Anton vs reference: {:.4}",
        rmsd(&s2_anton, &s2_ref)
    );
    println!(
        "S² rms difference Anton vs \"NMR\"   : {:.4}",
        rmsd(&s2_anton, &s2_nmr)
    );
    println!(
        "(window: {} frames x {} cycles x {} fs; the paper used 1 µs trajectories)",
        frames,
        stride,
        sys.params.dt_fs * sys.params.longrange_every as f64
    );
    let _ = superpose; // part of the public analysis API exercised in tests
}
