//! Figure 4: PPIP datapath audit — tiered table layout, block-floating-point
//! quantization, and the accuracy of the fitted kernels.
//!
//! `cargo run -p anton-bench --bin fig4`

use anton_machine::tables::TableSpec;
use anton_machine::Ppip;

fn main() {
    let beta = 0.24;
    let cutoff = 13.0;
    let ppip = Ppip::build(beta, cutoff);

    println!("PPIP function evaluator audit (β = {beta}, cutoff = {cutoff} Å)");
    println!(
        "paper example tier layout: {:?} ({} entries)",
        TableSpec::paper_default().tiers,
        TableSpec::paper_default().total_entries()
    );
    println!(
        "kernel tables use a geometric ladder: {} segments, {}-bit mantissas, shared exponent per entry",
        ppip.f_elec.segments.len(),
        ppip.f_elec.spec.mantissa_bits
    );

    anton_bench::header(
        "kernel table accuracy over r ∈ [2, 13] Å (fixed-point Horner path)",
        &["kernel", "max |rel err|", "rms rel err"],
    );
    let u_of = |r: f64| r * r / ppip.r2_max;
    for (name, tab, exact) in [
        (
            "erfc-coulomb force",
            &ppip.f_elec,
            Box::new(move |r: f64| {
                let x = beta * r;
                (anton_forcefield::units::erfc(x) / r
                    + 2.0 / std::f64::consts::PI.sqrt() * beta * (-x * x).exp())
                    / (r * r)
            }) as Box<dyn Fn(f64) -> f64>,
        ),
        (
            "LJ r⁻¹⁴ force",
            &ppip.f12,
            Box::new(|r: f64| 12.0 / (r * r).powi(7)),
        ),
        (
            "LJ r⁻⁸ force",
            &ppip.f6,
            Box::new(|r: f64| 6.0 / (r * r).powi(4)),
        ),
        (
            "erfc-coulomb energy",
            &ppip.e_elec,
            Box::new(move |r: f64| anton_forcefield::units::erfc(beta * r) / r),
        ),
    ] {
        let mut max_rel: f64 = 0.0;
        let mut sum2 = 0.0;
        let n = 20_000;
        for i in 0..n {
            let r = 2.0 + 11.0 * (i as f64 + 0.5) / n as f64;
            let u_q31 = (u_of(r) * (1i64 << 31) as f64) as i64;
            let got = tab.eval_fixed_f64(u_q31);
            let want = exact(r);
            let rel = ((got - want) / want).abs();
            max_rel = max_rel.max(rel);
            sum2 += rel * rel;
        }
        println!(
            "{name:<22} | {max_rel:>12.3e} | {:>12.3e}",
            (sum2 / n as f64).sqrt()
        );
    }

    println!(
        "\npaper Table 4 context: \"numerical force error\" on Anton is ~9e-6 of the rms force;\n\
         the table quantization above is the dominant contribution in this reproduction too."
    );
}
