//! Table 2: execution-time profiles for one DHFR time step — a single x86
//! core (our reference engine standing in for GROMACS) versus Anton (the
//! calibrated machine model) — under both electrostatics parameter sets:
//! (9 Å cutoff, 64³ mesh) and (13 Å cutoff, 32³ mesh).
//!
//! `cargo run -p anton-bench --bin table2 [--full]`
//! Default: a reduced DHFR-sized system and 2 profiled steps; `--full`
//! profiles the full 23,558-atom system over more steps.

use anton_core::system_stats;
use anton_machine::perf::dhfr_stats;
use anton_machine::PerfModel;
use anton_refmd::{RefSimulation, Thermostat};
use anton_systems::catalog::build_solvated;
use anton_systems::spec::RunParams;
use anton_systems::velocities::init_velocities;
use anton_systems::TABLE4;

fn profile_x86(cutoff: f64, mesh: usize, full: bool) -> [f64; 7] {
    // The x86 column: wall time per task for the reference engine on one
    // core. Reduced size scales every task together, preserving the ratio
    // structure that Table 2 is about.
    let (atoms, edge, steps) = if full {
        (23558, 62.2, 6)
    } else {
        (5994, 39.4, 2)
    };
    let entry = &TABLE4[1];
    let sys = build_solvated(
        entry.name,
        atoms,
        edge,
        RunParams::paper(cutoff.min(edge / 2.0 - 1.0), mesh),
        &anton_forcefield::water::TIP3P,
        if full { entry.protein_residues } else { 80 },
        0,
        0,
        7,
    );
    let vel = init_velocities(&sys.topology, 300.0, 11);
    let mut sim = RefSimulation::new(sys, vel, Thermostat::None);
    // One warm-up cycle, then measure.
    sim.run_cycle();
    sim.profile = Default::default();
    for _ in 0..steps {
        sim.run_cycle();
    }
    let mut prof = sim.profile;
    prof.steps = sim.step_count().min(steps as u64 * 2);
    // Report per *inner* step, with the long-range tasks amortized over the
    // RESPA cycle like the paper's per-step numbers.
    prof.steps = (steps * 2) as u64;
    prof.per_step_ms()
}

fn main() {
    let full = anton_bench::full_mode();
    let rows = [
        "range-limited",
        "FFT+inverse",
        "mesh interp",
        "correction",
        "bonded",
        "integration",
        "total",
    ];
    let paper_x86 = [
        [56.6, 12.3, 9.6, 4.0, 2.7, 3.4, 88.5],
        [164.4, 1.4, 8.8, 3.8, 2.7, 3.4, 184.5],
    ];
    let paper_anton = [
        [1.4, 24.7, 9.5, 2.5, 3.5, 1.6, 39.2],
        [1.9, 8.9, 2.0, 2.5, 4.1, 1.6, 15.4],
    ];

    println!("Table 2 — DHFR per-step task profile, two electrostatics parameter sets");
    if !full {
        println!(
            "(default: reduced 5,994-atom surrogate; run with --full for the 23,558-atom system)"
        );
    }

    for (ci, (cutoff, mesh)) in [(9.0, 64usize), (13.0, 32)].iter().enumerate() {
        let mesh_run = if full { *mesh } else { *mesh / 2 };
        let x86 = profile_x86(*cutoff, mesh_run, full);
        anton_bench::header(
            &format!("x86 single core — cutoff {cutoff} Å, mesh {mesh}³"),
            &["task", "ours (ms)", "paper GROMACS (ms)"],
        );
        for (i, r) in rows.iter().enumerate() {
            println!("{r:<14} | {:>9.2} | {:>10.1}", x86[i], paper_x86[ci][i]);
        }
        let ours_ratio = x86[0] / x86[6];
        println!(
            "range-limited share: ours {:.0}% vs paper {:.0}%",
            100.0 * ours_ratio,
            100.0 * paper_x86[ci][0] / paper_x86[ci][6]
        );

        // Anton columns from the performance model on the true workload.
        let stats = dhfr_stats(*cutoff, *mesh);
        let b = PerfModel::anton_512().breakdown(&stats);
        let anton = [
            b.range_limited_us,
            b.fft_us,
            b.mesh_us,
            b.correction_us,
            b.bonded_us,
            b.integration_us,
            b.lr_step_us,
        ];
        anton_bench::header(
            &format!("Anton 512 nodes (model) — cutoff {cutoff} Å, mesh {mesh}³"),
            &["task", "model (µs)", "paper (µs)"],
        );
        for (i, r) in rows.iter().enumerate() {
            println!("{r:<14} | {:>10.2} | {:>9.1}", anton[i], paper_anton[ci][i]);
        }
        println!(
            "model rate: {:.1} µs/day (paper: 16.4 at the 13 Å/32³ setting)",
            b.us_per_day
        );
    }

    // The paper's punchline: the same parameter change that slows the x86
    // ~2x speeds Anton up >2x.
    let x9 = PerfModel::anton_512().breakdown(&dhfr_stats(9.0, 64));
    let x13 = PerfModel::anton_512().breakdown(&dhfr_stats(13.0, 32));
    println!(
        "\nAnton speedup from (9 Å, 64³) → (13 Å, 32³): x{:.2} (paper: >2x; x86 slows ~2x)",
        x9.lr_step_us / x13.lr_step_us
    );

    // Cross-check that the built DHFR system feeds the model the workload
    // the hard-coded benchmark stats assume.
    if full {
        let sys = anton_systems::table4_system(&TABLE4[1], 3);
        let s = system_stats(&sys);
        println!(
            "\nbuilt-DHFR workload: {} correction pairs, {} bonded terms, {} solute atoms",
            s.n_correction_pairs, s.n_bonded_terms, s.protein_atoms
        );
    }
}
