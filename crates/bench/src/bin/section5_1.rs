//! §5.1 headline performance claims: DHFR at 16.4 µs/day on 512 nodes,
//! 7.5 µs/day per 128-node partition, Desmond at 471 ns/day on a 512-node
//! commodity cluster, and the node-count scaling family.
//!
//! `cargo run -p anton-bench --bin section5_1`

use anton_machine::perf::dhfr_stats;
use anton_machine::{MachineConfig, PerfModel};

fn main() {
    let stats = dhfr_stats(13.0, 32);

    anton_bench::header(
        "§5.1 — DHFR (23,558 atoms) across machine configurations",
        &["nodes", "torus", "µs/day (model)", "paper"],
    );
    for &nodes in &[1usize, 8, 64, 128, 256, 512, 1024, 4096] {
        let cfg = MachineConfig::with_nodes(nodes);
        let b = PerfModel::new(cfg).breakdown(&stats);
        let paper = match nodes {
            512 => "16.4",
            128 => "7.5",
            _ => "-",
        };
        println!(
            "{nodes:>5} | {:?} | {:>13.2} | {paper}",
            cfg.torus, b.us_per_day
        );
    }

    let b512 = PerfModel::anton_512().breakdown(&stats);
    let b128 = PerfModel::new(MachineConfig::with_nodes(128)).breakdown(&stats);
    println!(
        "\n128-node partition delivers {:.0}% of 512-node performance (paper: \"well over 25%\")",
        100.0 * b128.us_per_day / b512.us_per_day
    );

    let cluster = PerfModel::commodity_cluster_us_per_day(&stats, 512, 2);
    println!(
        "commodity 512-node cluster model: {:.3} µs/day (paper Desmond: 0.471 µs/day)",
        cluster
    );
    println!(
        "Anton advantage over the cluster: x{:.0} (paper: ~35x vs best cluster result, \
         >100x vs practical cluster rates)",
        b512.us_per_day / cluster
    );
}
