//! Shared harness utilities for the experiment binaries.
//!
//! Every binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §5 for the index) and prints a paper-vs-measured
//! comparison. Binaries accept `--full` for paper-scale workloads; the
//! default sizes finish in minutes on one core.

use anton_core::{AntonSimulation, ThermostatKind};
use anton_systems::System;

pub mod artifacts;
pub mod json;

/// Parse the common `--full` flag.
pub fn full_mode() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Print a table header + rule.
pub fn header(title: &str, cols: &[&str]) {
    println!("\n=== {title} ===");
    println!("{}", cols.join(" | "));
    println!(
        "{}",
        "-".repeat(cols.iter().map(|c| c.len() + 3).sum::<usize>())
    );
}

/// Measure NVE energy drift on the Anton engine: equilibrate briefly with a
/// thermostat, then run `nve_cycles` microcanonical cycles sampling total
/// energy; returns (drift kcal/mol/DoF/µs, simulated time fs).
pub fn measure_drift(system: System, nve_cycles: usize, seed: u64) -> (f64, f64) {
    let dof = system.topology.degrees_of_freedom();
    let k = system.params.longrange_every.max(1) as f64;
    let dt = system.params.dt_fs;
    let mut sim = AntonSimulation::builder(system)
        .velocities_from_temperature(300.0, seed)
        .thermostat(ThermostatKind::Berendsen {
            target_k: 300.0,
            tau_fs: 20.0,
        })
        .build();
    // Equilibrate for as long as the measurement window: drift fits on an
    // unequilibrated system measure relaxation, not integrator error.
    sim.run_cycles(nve_cycles.max(50));
    sim.thermostat = ThermostatKind::None;

    let mut times = Vec::with_capacity(nve_cycles);
    let mut energies = Vec::with_capacity(nve_cycles);
    for c in 0..nve_cycles {
        sim.run_cycle();
        times.push((c + 1) as f64 * k * dt);
        energies.push(sim.total_energy());
    }
    let drift = anton_analysis::energy_drift_per_dof_us(&times, &energies, dof);
    (drift, nve_cycles as f64 * k * dt)
}

/// Root-mean-square force error of the Anton engine against a reference
/// force set (the Table 4 metric).
pub fn anton_vs_reference_error(sim: &AntonSimulation, reference: &[anton_geometry::Vec3]) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, r) in reference.iter().enumerate() {
        num += (sim.total_force_f64(i) - *r).norm2();
        den += r.norm2();
    }
    (num / den).sqrt()
}
