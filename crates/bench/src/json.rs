//! A minimal JSON reader for the perf gate.
//!
//! The workspace vendors no JSON crate, and the benchmark artifacts it
//! needs to re-read are the small, flat files this repository writes
//! itself (`results/BENCH_scaling.json`, `results/TRACE_scaling.json`,
//! `results/PERF_baseline.json`). This is a plain recursive-descent parser
//! over that subset of JSON — strings, finite numbers, booleans, null,
//! arrays, objects — with no streaming, no borrowing, and no serde.

/// A parsed JSON value. Object keys keep file order (duplicates keep the
/// first occurrence on lookup).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { text, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.text.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Integer access for count fields (exact in f64 far beyond any count
    /// this repository writes).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= (1u64 << 53) as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    text: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn bytes(&self) -> &[u8] {
        self.text.as_bytes()
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes().get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes()[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .text
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs never appear in this
                            // repository's artifacts; reject rather than
                            // mis-decode.
                            out.push(char::from_u32(code).ok_or("surrogate in \\u escape")?);
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // `pos` always sits on a char boundary here.
                    let rest = &self.text[self.pos..];
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.text[start..self.pos];
        let x: f64 = text
            .parse()
            .map_err(|_| format!("bad number '{text}' at byte {start}"))?;
        if !x.is_finite() {
            return Err(format!("non-finite number '{text}'"));
        }
        Ok(Json::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_artifact_subset() {
        let doc = r#"{
          "schema": "bench-scaling/v1",
          "rows": [
            {"nodes": 8, "ms": 0.125, "state": "c2212d9714372970", "ok": true},
            {"nodes": 64, "ms": 1.5e-2, "state": "ffff000011112222", "ok": false}
          ],
          "note": null
        }"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("bench-scaling/v1"));
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("nodes").unwrap().as_u64(), Some(8));
        assert_eq!(rows[1].get("ms").unwrap().as_f64(), Some(1.5e-2));
        assert_eq!(rows[1].get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("note"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "01x", "\"\\q\"", "[1] trailing"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""a\"b\\c\nd\u0041""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }
}
