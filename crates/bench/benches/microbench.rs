//! Criterion microbenchmarks of the workspace's hot paths: fixed-point
//! primitives, PPIP table evaluation, FFTs (f64 and fixed), GSE, the cell
//! grid, and full engine steps on a small water box.

use anton_core::{AntonSimulation, Decomposition};
use anton_ewald::gse::{GseFixed, GseParams, GseReference};
use anton_ewald::Mesh;
use anton_fft::fixed::{FxComplex, FxFft};
use anton_fft::{Complex, Fft3d};
use anton_fixpoint::{rne_shr_i64, Q20};
use anton_forcefield::water::TIP3P;
use anton_geometry::{CellGrid, PeriodicBox, Vec3};
use anton_machine::Ppip;
use anton_refmd::{RefSimulation, Thermostat};
use anton_systems::spec::RunParams;
use anton_systems::velocities::init_velocities;
use anton_systems::waterbox::pure_water_topology;
use anton_systems::System;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn water_system(n: usize) -> System {
    // Box sized for liquid density at the requested molecule count.
    let edge = (n as f64 / 0.0334).cbrt().max(16.0);
    let pbox = PeriodicBox::cubic(edge);
    let (top, positions) = pure_water_topology(&pbox, &TIP3P, n, 5);
    System {
        name: "bench-water".into(),
        pbox,
        topology: top,
        positions,
        params: RunParams::paper(7.5, 16),
    }
}

fn bench_fixpoint(c: &mut Criterion) {
    c.bench_function("fixpoint/rne_shr_i64", |b| {
        let mut x = 0x1234_5678_9abci64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(rne_shr_i64(black_box(x), 20))
        })
    });
    c.bench_function("fixpoint/q20_mul", |b| {
        let p = Q20::from_f64(3.15625);
        let q = Q20::from_f64(-2.71875);
        b.iter(|| black_box(black_box(p).mul(black_box(q))))
    });
}

fn bench_ppip(c: &mut Criterion) {
    let ppip = Ppip::build(0.24, 13.0);
    c.bench_function("ppip/pair_table", |b| {
        let r2_q20 = (60.0 * (1i64 << 20) as f64) as i64;
        b.iter(|| black_box(ppip.pair(black_box(r2_q20), 0.25, 5.0e5, 600.0)))
    });
    c.bench_function("ppip/pair_exact_f64", |b| {
        b.iter(|| black_box(ppip.pair_exact(black_box(60.0), 0.25, 5.0e5, 600.0)))
    });
}

fn bench_fft(c: &mut Criterion) {
    let plan = Fft3d::cubic(32);
    let data: Vec<Complex> = (0..32 * 32 * 32)
        .map(|i| Complex::new((i % 17) as f64, (i % 5) as f64))
        .collect();
    c.bench_function("fft/f64_32cubed_forward", |b| {
        b.iter(|| {
            let mut d = data.clone();
            plan.forward(&mut d);
            black_box(d[0])
        })
    });
    let fx = FxFft::new(32);
    let line: Vec<FxComplex> = (0..32)
        .map(|i| FxComplex::new((i as i64) << 30, (i as i64) << 29))
        .collect();
    c.bench_function("fft/fixed_line32_forward", |b| {
        b.iter(|| {
            let mut d = line.clone();
            fx.forward_scaled(&mut d);
            black_box(d[0])
        })
    });
}

fn bench_gse(c: &mut Criterion) {
    let pbox = PeriodicBox::cubic(16.0);
    let params = GseParams::auto(7.0, 4.8);
    let positions: Vec<Vec3> = (0..64)
        .map(|i| {
            Vec3::new(
                (i % 4) as f64 * 4.0 + 1.0,
                ((i / 4) % 4) as f64 * 4.0 + 1.0,
                (i / 16) as f64 * 4.0 + 1.0,
            )
        })
        .collect();
    let charges: Vec<f64> = (0..64)
        .map(|i| if i % 2 == 0 { 0.5 } else { -0.5 })
        .collect();

    let gse_ref = GseReference::new(Mesh::new([32; 3], pbox), params);
    c.bench_function("gse/reference_64atoms_32cubed", |b| {
        b.iter(|| {
            let mut f = vec![Vec3::ZERO; 64];
            black_box(gse_ref.compute(&positions, &charges, &mut f).energy)
        })
    });
    let gse_fx = GseFixed::new(Mesh::new([32; 3], pbox), params);
    let mut scratch = anton_ewald::GseScratch::default();
    c.bench_function("gse/fixed_64atoms_32cubed", |b| {
        b.iter(|| {
            let mut f = vec![[0i64; 3]; 64];
            black_box(gse_fx.compute_fixed(&positions, &charges, 24, &mut f, &mut scratch))
        })
    });
}

fn bench_cellgrid(c: &mut Criterion) {
    let sys = water_system(300);
    c.bench_function("cellgrid/build_900_atoms", |b| {
        b.iter(|| black_box(CellGrid::build(&sys.pbox, &sys.positions, 7.5).cell_count()))
    });
    let grid = CellGrid::build(&sys.pbox, &sys.positions, 7.5);
    c.bench_function("cellgrid/pair_sweep_900_atoms", |b| {
        b.iter(|| {
            let mut n = 0u64;
            grid.for_each_pair_within(&sys.positions, 7.5, |_, _, _, _| n += 1);
            black_box(n)
        })
    });
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_step");
    group.sample_size(10);

    group.bench_function("anton_cycle_360_atoms", |b| {
        let mut sim = AntonSimulation::builder(water_system(120))
            .velocities_from_temperature(300.0, 7)
            .decomposition(Decomposition::SingleRank)
            .build();
        b.iter(|| {
            sim.run_cycle();
            black_box(sim.step_count())
        })
    });

    group.bench_function("refmd_cycle_360_atoms", |b| {
        let sys = water_system(120);
        let vel = init_velocities(&sys.topology, 300.0, 9);
        let mut sim = RefSimulation::new(sys, vel, Thermostat::None);
        b.iter(|| {
            sim.run_cycle();
            black_box(sim.step_count())
        })
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_fixpoint,
    bench_ppip,
    bench_fft,
    bench_gse,
    bench_cellgrid,
    bench_engines
);
criterion_main!(benches);
