//! Golden byte-identity for the paper-artifact CSVs: the checked-in
//! `results/TABLE_*.csv` files must regenerate bit-for-bit from the
//! checked-in benchmark JSON artifacts. Any drift — a formatting change, a
//! model retune, a column reorder — fails here (and in the CI leg that
//! runs `export_tables` + `git diff --exit-code`) until the tables are
//! intentionally regenerated and committed.

use anton_bench::artifacts::{all_tables, results_dir};
use anton_bench::json::Json;
use std::fs;

fn load(name: &str) -> Json {
    let path = results_dir().join(name);
    let text =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    Json::parse(&text).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()))
}

#[test]
fn checked_in_tables_regenerate_byte_identically() {
    let tables = all_tables(
        &load("BENCH_scaling.json"),
        &load("TRACE_scaling.json"),
        &load("FLEET_drill.json"),
    )
    .expect("artifact build failed");
    let names: Vec<&str> = tables.iter().map(|t| t.name).collect();
    assert_eq!(
        names,
        [
            "TABLE_2",
            "TABLE_4",
            "TABLE_scaling",
            "TABLE_trace_phases",
            "TABLE_ckpt",
            "TABLE_fleet"
        ],
        "exported table set changed — update this test and the CI diff leg together"
    );
    for t in &tables {
        let path = results_dir().join(format!("{}.csv", t.name));
        let committed = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{} is not checked in ({e}); run `cargo run -p anton-bench --bin export_tables`",
                path.display()
            )
        });
        assert_eq!(
            committed,
            t.render_csv(),
            "{} drifted from its inputs; regenerate with \
             `cargo run -p anton-bench --bin export_tables` and commit the diff",
            t.name
        );
    }
}

#[test]
fn rendered_tables_are_schema_versioned_and_newline_clean() {
    let tables = all_tables(
        &load("BENCH_scaling.json"),
        &load("TRACE_scaling.json"),
        &load("FLEET_drill.json"),
    )
    .unwrap();
    for t in &tables {
        let csv = t.render_csv();
        assert!(
            csv.starts_with(&format!("# anton-tables/v1 {}\n", t.name)),
            "{} missing schema header",
            t.name
        );
        assert!(csv.ends_with('\n'), "{} not newline-terminated", t.name);
        assert!(!csv.contains('\r'), "{} contains CR bytes", t.name);
        // Renders are idempotent: a second render is the same bytes.
        assert_eq!(csv, t.render_csv());
    }
}
