//! Job specifications and content-derived job ids.
//!
//! A fleet job is a complete, self-contained description of one
//! simulation: the system recipe (a seeded waterbox — the workload shape
//! of the drill and of the ensemble protocols in PAPERS.md), the run
//! parameters, the decomposition, and how many outer RESPA cycles to run.
//! The job id is a labeled FNV fingerprint of every field, so identical
//! submissions are *the same job* (submission is idempotent) and the queue
//! order can be a pure function of the submitted set — two daemons given
//! the same specs in any arrival order agree on ids and schedule.

use crate::error::FleetError;
use crate::wire::{Reader, Writer};
use anton_ckpt::{fnv1a, Fingerprint};
use anton_core::{AntonSimulation, Decomposition, SimulationBuilder};
use anton_forcefield::water::TIP3P;
use anton_geometry::PeriodicBox;
use anton_systems::spec::RunParams;
use anton_systems::waterbox::pure_water_topology;
use anton_systems::System;
use std::fmt;

/// Content-derived job identifier: a labeled fingerprint of the full spec.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl JobId {
    /// Parse the 16-hex-digit form printed by `Display`.
    pub fn parse(s: &str) -> Option<JobId> {
        u64::from_str_radix(s.trim(), 16).ok().map(JobId)
    }
}

/// One submittable simulation job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Human label (part of the job identity: two ensemble members with
    /// identical physics but different labels are distinct jobs).
    pub name: String,
    /// Water molecules in the box.
    pub n_waters: u32,
    /// Cubic box edge (Å).
    pub box_edge: f64,
    /// Seed for the deterministic water placement.
    pub placement_seed: u64,
    /// Maxwell–Boltzmann initialization temperature (K).
    pub temperature_k: f64,
    /// Seed for the velocity draw.
    pub velocity_seed: u64,
    /// Range-limited cutoff (Å); the rest of the run parameters follow
    /// `RunParams::paper(cutoff, mesh)`.
    pub cutoff: f64,
    /// FFT mesh dimension (cubic, power of two).
    pub mesh: u32,
    /// Outer RESPA cycles to run before the job is complete.
    pub cycles: u64,
    /// Scheduling priority: higher runs first; ties break on job id.
    pub priority: u32,
    /// Simulated node decomposition (0 = single rank).
    pub nodes: u32,
    /// Worker threads for the per-rank fan-out (bitwise-invariant, but part
    /// of the checkpoint fingerprint, so it is pinned per job).
    pub threads: u32,
}

impl JobSpec {
    /// The content fingerprint identifying this job. Every field is mixed
    /// with its label; float fields enter as their exact bit patterns.
    pub fn job_id(&self) -> JobId {
        JobId(
            Fingerprint::new()
                .field("fleet_job_version", 1)
                // detlint::allow(D8, reason = "job names are &str, so these bytes are UTF-8 — identical on every architecture; no integer layout is involved")
                .field("name_fnv", fnv1a(self.name.as_bytes()))
                .field("n_waters", self.n_waters as u64)
                .field("box_edge", self.box_edge.to_bits())
                .field("placement_seed", self.placement_seed)
                .field("temperature_k", self.temperature_k.to_bits())
                .field("velocity_seed", self.velocity_seed)
                .field("cutoff", self.cutoff.to_bits())
                .field("mesh", self.mesh as u64)
                .field("cycles", self.cycles)
                .field("priority", self.priority as u64)
                .field("nodes", self.nodes as u64)
                .field("threads", self.threads as u64)
                .finish(),
        )
    }

    /// Refuse specs the engine could not run (before they enter the queue).
    pub fn validate(&self) -> Result<(), FleetError> {
        let fail = |reason: String| Err(FleetError::SpecInvalid { reason });
        if self.name.is_empty() || self.name.len() > 128 {
            return fail(format!("name length {} outside 1..=128", self.name.len()));
        }
        if self.n_waters == 0 {
            return fail("n_waters must be at least 1".into());
        }
        if self.cycles == 0 {
            return fail("cycles must be at least 1".into());
        }
        if !self.mesh.is_power_of_two() || !(8..=128).contains(&self.mesh) {
            return fail(format!(
                "mesh {} is not a power of two in 8..=128",
                self.mesh
            ));
        }
        if !(self.box_edge.is_finite() && self.cutoff.is_finite() && self.temperature_k.is_finite())
        {
            return fail("box_edge, cutoff and temperature_k must be finite".into());
        }
        if self.temperature_k <= 0.0 {
            return fail(format!(
                "temperature {} K is not positive",
                self.temperature_k
            ));
        }
        if self.cutoff <= 0.0 || self.cutoff * 2.0 >= self.box_edge {
            return fail(format!(
                "cutoff {} incompatible with box edge {} (minimum image)",
                self.cutoff, self.box_edge
            ));
        }
        // Placement density guard: the waterbox builder dart-throws against
        // a minimum-distance criterion and cannot exceed liquid density.
        let density = self.n_waters as f64 / (self.box_edge * self.box_edge * self.box_edge);
        if density > 0.034 {
            return fail(format!(
                "{} waters in a {} Å box exceeds liquid water density",
                self.n_waters, self.box_edge
            ));
        }
        Ok(())
    }

    /// Assemble the simulatable system this spec describes.
    pub fn build_system(&self) -> Result<System, FleetError> {
        self.validate()?;
        let pbox = PeriodicBox::cubic(self.box_edge);
        let (topology, positions) =
            pure_water_topology(&pbox, &TIP3P, self.n_waters as usize, self.placement_seed);
        let sys = System {
            name: self.name.clone(),
            pbox,
            topology,
            positions,
            params: RunParams::paper(self.cutoff, self.mesh as usize),
        };
        sys.validate()
            .map_err(|reason| FleetError::SpecInvalid { reason })?;
        Ok(sys)
    }

    /// The fully configured engine builder for this job. Both the fresh
    /// build and every checkpoint resume go through here, so a job's
    /// configuration (and therefore its checkpoint fingerprint) is a pure
    /// function of the spec — never of the host, the environment, or the
    /// scheduling history.
    pub fn builder(&self) -> Result<SimulationBuilder, FleetError> {
        let sys = self.build_system()?;
        let decomposition = match self.nodes {
            0 => Decomposition::SingleRank,
            n => Decomposition::Nodes(n as usize),
        };
        Ok(AntonSimulation::builder(sys)
            .velocities_from_temperature(self.temperature_k, self.velocity_seed)
            .decomposition(decomposition)
            .threads(self.threads.max(1) as usize)
            .tracing(true))
    }

    /// Steps per outer cycle for this spec's run parameters.
    pub fn steps_per_cycle(&self) -> u64 {
        RunParams::paper(self.cutoff, self.mesh as usize)
            .longrange_every
            .max(1) as u64
    }

    /// Encode for the wire and the persisted queue record (version 1).
    pub fn encode_into(&self, w: &mut Writer) {
        w.str_field(&self.name);
        w.u32(self.n_waters);
        w.u64(self.box_edge.to_bits());
        w.u64(self.placement_seed);
        w.u64(self.temperature_k.to_bits());
        w.u64(self.velocity_seed);
        w.u64(self.cutoff.to_bits());
        w.u32(self.mesh);
        w.u64(self.cycles);
        w.u32(self.priority);
        w.u32(self.nodes);
        w.u32(self.threads);
    }

    pub fn decode_from(r: &mut Reader<'_>) -> Result<JobSpec, FleetError> {
        Ok(JobSpec {
            name: r.str_field("job name")?,
            n_waters: r.u32()?,
            box_edge: f64::from_bits(r.u64()?),
            placement_seed: r.u64()?,
            temperature_k: f64::from_bits(r.u64()?),
            velocity_seed: r.u64()?,
            cutoff: f64::from_bits(r.u64()?),
            mesh: r.u32()?,
            cycles: r.u64()?,
            priority: r.u32()?,
            nodes: r.u32()?,
            threads: r.u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub fn sample() -> JobSpec {
        JobSpec {
            name: "waterbox-a".into(),
            n_waters: 40,
            box_edge: 16.0,
            placement_seed: 3,
            temperature_k: 300.0,
            velocity_seed: 7,
            cutoff: 7.0,
            mesh: 16,
            cycles: 3,
            priority: 1,
            nodes: 0,
            threads: 1,
        }
    }

    #[test]
    fn job_id_is_a_pure_function_of_content() {
        assert_eq!(sample().job_id(), sample().job_id());
        let mut other = sample();
        other.velocity_seed = 8;
        assert_ne!(sample().job_id(), other.job_id());
        let mut renamed = sample();
        renamed.name = "waterbox-b".into();
        assert_ne!(sample().job_id(), renamed.job_id());
    }

    #[test]
    fn validation_refuses_unrunnable_specs() {
        assert!(sample().validate().is_ok());
        let mut bad = sample();
        bad.cutoff = 9.0; // 2*9 >= 16
        assert_eq!(bad.validate().unwrap_err().kind(), "spec_invalid");
        let mut bad = sample();
        bad.mesh = 12;
        assert_eq!(bad.validate().unwrap_err().kind(), "spec_invalid");
        let mut bad = sample();
        bad.n_waters = 10_000;
        assert_eq!(bad.validate().unwrap_err().kind(), "spec_invalid");
        let mut bad = sample();
        bad.cycles = 0;
        assert_eq!(bad.validate().unwrap_err().kind(), "spec_invalid");
        let mut bad = sample();
        bad.temperature_k = f64::NAN;
        assert_eq!(bad.validate().unwrap_err().kind(), "spec_invalid");
    }

    #[test]
    fn spec_roundtrips_through_the_codec() {
        let s = sample();
        let mut w = Writer::new();
        s.encode_into(&mut w);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        let decoded = JobSpec::decode_from(&mut r).unwrap();
        r.expect_end("job spec").unwrap();
        assert_eq!(decoded, s);
    }

    #[test]
    fn built_system_matches_the_spec() {
        let sys = sample().build_system().unwrap();
        assert_eq!(sys.n_atoms(), 40 * 3);
        assert_eq!(sys.name, "waterbox-a");
        assert_eq!(sys.params.mesh, [16; 3]);
    }
}
