//! The typed `anton-fleet` error vocabulary.
//!
//! Mirrors `anton-ckpt`'s contract: every failure mode a client or the
//! daemon can hit is a named variant with a stable `kind()` tag, and the
//! *corruption* subset (damaged wire frames or persisted queue records) is
//! classified separately from incompatibility and plain I/O — the drill
//! and the property suites assert on the classification, not on message
//! strings.

use anton_ckpt::CkptError;
use std::fmt;

/// Why a fleet operation could not complete.
#[derive(Debug)]
pub enum FleetError {
    /// Fewer bytes than the fixed-size prefix being decoded requires.
    TooShort { needed: u64, got: u64 },
    /// The 8-byte frame magic is not `ANTFLET1`: not a fleet frame at all.
    BadMagic,
    /// A frame or record from a different protocol/schema version.
    BadVersion { got: u32, expected: u32 },
    /// A stored FNV-1a checksum does not match the recomputed one.
    ChecksumMismatch {
        what: &'static str,
        stored: u64,
        computed: u64,
    },
    /// A declared length disagrees with the bytes actually present.
    LengthMismatch {
        what: &'static str,
        expected: u64,
        got: u64,
    },
    /// The stream/record ends before its declared payload does.
    Truncated { expected: u64, got: u64 },
    /// A frame declares a payload larger than the protocol allows (refused
    /// before any allocation, so a corrupt length can never OOM the peer).
    FrameTooLarge { len: u64, max: u64 },
    /// An enum tag (message kind, job phase, ...) outside the vocabulary.
    BadTag { what: &'static str, got: u64 },
    /// A job id the daemon has never been given.
    UnknownJob { id: u64 },
    /// A submitted spec failed validation before entering the queue.
    SpecInvalid { reason: String },
    /// The peer answered a request with a wire-level error response.
    Remote { kind: String, message: String },
    /// The peer answered with a response kind the request cannot produce.
    UnexpectedResponse {
        wanted: &'static str,
        got: &'static str,
    },
    /// Checkpoint-layer failure (job stores or persisted queue state).
    Ckpt(CkptError),
    /// Underlying socket/filesystem error.
    Io(std::io::Error),
}

impl FleetError {
    /// Short stable tag naming the variant (drill reports, tests, wire
    /// error responses).
    pub fn kind(&self) -> &'static str {
        match self {
            FleetError::TooShort { .. } => "too_short",
            FleetError::BadMagic => "bad_magic",
            FleetError::BadVersion { .. } => "bad_version",
            FleetError::ChecksumMismatch { .. } => "checksum_mismatch",
            FleetError::LengthMismatch { .. } => "length_mismatch",
            FleetError::Truncated { .. } => "truncated",
            FleetError::FrameTooLarge { .. } => "frame_too_large",
            FleetError::BadTag { .. } => "bad_tag",
            FleetError::UnknownJob { .. } => "unknown_job",
            FleetError::SpecInvalid { .. } => "spec_invalid",
            FleetError::Remote { .. } => "remote",
            FleetError::UnexpectedResponse { .. } => "unexpected_response",
            FleetError::Ckpt(_) => "ckpt",
            FleetError::Io(_) => "io",
        }
    }

    /// True for variants that mean the *bytes* are damaged — a corrupted
    /// wire frame or persisted record — as opposed to valid-but-wrong
    /// requests, incompatibility, or I/O failures. Checkpoint-layer errors
    /// delegate to [`CkptError::is_corruption`].
    pub fn is_corruption(&self) -> bool {
        match self {
            FleetError::TooShort { .. }
            | FleetError::BadMagic
            | FleetError::ChecksumMismatch { .. }
            | FleetError::LengthMismatch { .. }
            | FleetError::Truncated { .. }
            | FleetError::FrameTooLarge { .. }
            | FleetError::BadTag { .. } => true,
            FleetError::Ckpt(e) => e.is_corruption(),
            _ => false,
        }
    }
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::TooShort { needed, got } => {
                write!(f, "input too short: need {needed} bytes, got {got}")
            }
            FleetError::BadMagic => write!(f, "bad magic: not an anton-fleet frame"),
            FleetError::BadVersion { got, expected } => {
                write!(
                    f,
                    "unsupported protocol version {got} (expected {expected})"
                )
            }
            FleetError::ChecksumMismatch {
                what,
                stored,
                computed,
            } => write!(
                f,
                "{what} checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            FleetError::LengthMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what}: declared length {expected}, found {got}"),
            FleetError::Truncated { expected, got } => write!(
                f,
                "truncated payload: declared {expected} bytes, found {got}"
            ),
            FleetError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            FleetError::BadTag { what, got } => write!(f, "{what}: unknown tag {got}"),
            FleetError::UnknownJob { id } => write!(f, "unknown job {id:016x}"),
            FleetError::SpecInvalid { reason } => write!(f, "invalid job spec: {reason}"),
            FleetError::Remote { kind, message } => {
                write!(f, "daemon error [{kind}]: {message}")
            }
            FleetError::UnexpectedResponse { wanted, got } => {
                write!(f, "expected a {wanted} response, got {got}")
            }
            FleetError::Ckpt(e) => write!(f, "checkpoint layer: {e}"),
            FleetError::Io(e) => write!(f, "fleet i/o: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Ckpt(e) => Some(e),
            FleetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> FleetError {
        FleetError::Io(e)
    }
}

impl From<CkptError> for FleetError {
    fn from(e: CkptError) -> FleetError {
        FleetError::Ckpt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_corruption_is_classified() {
        let c = FleetError::ChecksumMismatch {
            what: "frame payload",
            stored: 1,
            computed: 2,
        };
        assert_eq!(c.kind(), "checksum_mismatch");
        assert!(c.is_corruption());
        assert!(FleetError::BadMagic.is_corruption());
        assert!(FleetError::FrameTooLarge { len: 9, max: 8 }.is_corruption());
        let u = FleetError::UnknownJob { id: 7 };
        assert_eq!(u.kind(), "unknown_job");
        assert!(!u.is_corruption());
        assert!(!FleetError::SpecInvalid { reason: "x".into() }.is_corruption());
        // Ckpt corruption classification passes through.
        assert!(FleetError::Ckpt(CkptError::BadMagic).is_corruption());
        assert!(!FleetError::Ckpt(CkptError::NotConfigured).is_corruption());
    }

    #[test]
    fn display_is_informative() {
        let e = FleetError::Truncated {
            expected: 100,
            got: 60,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("60"), "{s}");
        let r = FleetError::Remote {
            kind: "unknown_job".into(),
            message: "job 00ff not found".into(),
        };
        assert!(r.to_string().contains("unknown_job"));
    }
}
