//! Checkpoint-preemptive scheduling: a worker pool time-slices many
//! simulations through quantum-of-cycles slices.
//!
//! **Preemption mechanism.** A job never holds a worker longer than one
//! quantum. Each slice (re)builds the job's engine purely from its spec,
//! resumes from the newest valid checkpoint in the job's own store (or
//! starts fresh when there is none), runs `min(quantum, remaining)` outer
//! cycles, and writes a checkpoint. Because engine resume is bitwise exact
//! (DESIGN.md §12) and the engine configuration is a pure function of the
//! spec, the trajectory a job traces is **identical for every quantum,
//! worker count, and interleaving** — scheduling decides only *when* the
//! cycles run, never *what* they compute.
//!
//! **Crash safety.** Slices are store-driven and self-healing: the only
//! authority on a job's progress is its newest valid checkpoint. The
//! persisted queue record is a (possibly slightly stale) index — if the
//! daemon dies between a slice's checkpoint write and its queue commit,
//! recovery resumes from the checkpoint and the record catches up at the
//! next commit. Nothing is lost; at worst a tail of cycles is re-run
//! bitwise-identically from the last checkpoint.

use crate::error::FleetError;
use crate::queue::{JobPhase, JobRecord, JobStatusView, PhaseTotals, QueueState, QueueStore};
use crate::spec::{JobId, JobSpec};
use anton_analysis::battery::Verifier;
use anton_ckpt::{fnv1a, CheckpointStore};
use anton_core::AntonSimulation;
use anton_trace::phase_summary;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex, MutexGuard};

/// How a fleet instance is laid out and sliced.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Root of all durable state: `<state_dir>/queue` holds the queue
    /// snapshots, `<state_dir>/jobs/<id>` each job's checkpoint store.
    pub state_dir: PathBuf,
    /// Outer cycles per slice before a job is preempted (min 1).
    pub quantum: u64,
    /// Concurrent slice workers (min 1).
    pub workers: usize,
    /// Rotated checkpoints kept per job.
    pub keep: usize,
}

impl FleetConfig {
    pub fn new(state_dir: impl Into<PathBuf>) -> FleetConfig {
        FleetConfig {
            state_dir: state_dir.into(),
            quantum: 4,
            workers: 1,
            keep: 3,
        }
    }

    /// Checkpoint-store directory of one job.
    pub fn job_dir(&self, id: JobId) -> PathBuf {
        self.state_dir.join("jobs").join(format!("{id}"))
    }

    fn queue_dir(&self) -> PathBuf {
        self.state_dir.join("queue")
    }
}

/// FNV-1a over the full fixed-point state image: the trajectory identity
/// used everywhere a fleet run is compared against a solo run.
pub fn state_checksum(sim: &AntonSimulation) -> u64 {
    fnv1a(sim.state.to_bytes().as_ref())
}

/// Worker termination policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunMode {
    /// Exit when every job is done (batch: `Fleet::run_to_completion`).
    Drain,
    /// Park when idle and wait for submissions until [`Fleet::stop`].
    Serve,
}

/// What one slice did, computed entirely outside the queue lock.
struct SliceOutcome {
    cycles_done: u64,
    done: bool,
    resumed: bool,
    ckpt_bytes: u64,
    final_checksum: u64,
    violations: u64,
    battery_samples: u64,
    /// Per-phase (index, spans, messages, bytes) deltas from this slice.
    phase_deltas: Vec<(u32, u64, u64, u64)>,
}

/// Mutable scheduler state, always accessed under the fleet lock.
struct Inner {
    queue: QueueState,
    /// Jobs currently out on a worker (in-memory only; never persisted).
    running: BTreeSet<JobId>,
    /// Jobs whose last slice failed for environmental reasons; excluded
    /// from claiming until a restart (in-memory only, so a restart
    /// retries them — right for transient I/O failures).
    failed: BTreeSet<JobId>,
    stopping: bool,
}

/// A fleet: the shared queue, its durable store, and the slicing rules.
/// Clone-free sharing is by reference (`std::thread::scope`).
pub struct Fleet {
    cfg: FleetConfig,
    store: QueueStore,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Fleet {
    /// Open (and recover) a fleet rooted at `cfg.state_dir`. Recovery
    /// takes the newest valid queue snapshot — a corrupted newest file
    /// falls back to the previous one — and reconciles each unfinished
    /// job's progress against its own checkpoint store, which is the
    /// authority after a crash.
    pub fn create(cfg: FleetConfig) -> Result<Fleet, FleetError> {
        let store = QueueStore::create(cfg.queue_dir())?;
        let mut queue = store.recover()?.unwrap_or_default();
        for (id, rec) in queue.jobs.iter_mut() {
            if rec.phase == JobPhase::Done {
                continue;
            }
            let probe = CheckpointStore::open(cfg.job_dir(*id), cfg.keep.max(1)).latest_valid();
            if let Ok((_, snap)) = probe {
                rec.cycles_done = snap.step / rec.spec.steps_per_cycle().max(1);
            }
        }
        Ok(Fleet {
            cfg,
            store,
            inner: Mutex::new(Inner {
                queue,
                running: BTreeSet::new(),
                failed: BTreeSet::new(),
                stopping: false,
            }),
            cv: Condvar::new(),
        })
    }

    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panicking worker must not wedge the daemon: the queue state is
        // persisted transactionally, so the data is consistent regardless.
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Validate and enqueue a job; idempotent on identical specs. Returns
    /// (id, freshly inserted, position in the deterministic schedule).
    pub fn submit(&self, spec: JobSpec) -> Result<(JobId, bool, u64), FleetError> {
        let mut g = self.lock();
        let (id, fresh) = g.queue.submit(spec)?;
        if fresh {
            g.queue.revision += 1;
            self.store.persist(&g.queue)?;
            self.cv.notify_all();
        }
        let position = g.queue.position(id).unwrap_or(0);
        Ok((id, fresh, position))
    }

    pub fn status(&self, id: JobId) -> Result<JobStatusView, FleetError> {
        self.lock().queue.view(id)
    }

    pub fn list(&self) -> Vec<JobStatusView> {
        self.lock().queue.views()
    }

    pub fn summary(&self, id: JobId) -> Result<(JobStatusView, Vec<PhaseTotals>), FleetError> {
        let g = self.lock();
        let rec = g
            .queue
            .jobs
            .get(&id)
            .ok_or(FleetError::UnknownJob { id: id.0 })?;
        Ok((rec.view(), rec.phases.clone()))
    }

    /// (total jobs, queue revision) — the liveness headline.
    pub fn ping(&self) -> (u64, u64) {
        let g = self.lock();
        (g.queue.jobs.len() as u64, g.queue.revision)
    }

    /// True when nothing is runnable and nothing is out on a worker.
    pub fn idle(&self) -> bool {
        let g = self.lock();
        g.running.is_empty() && Self::claimable(&g).is_none()
    }

    /// Ask every worker to wind down after its current slice.
    pub fn stop(&self) {
        self.lock().stopping = true;
        self.cv.notify_all();
    }

    pub fn is_stopping(&self) -> bool {
        self.lock().stopping
    }

    /// First claimable job in schedule order: queued, not out on a
    /// worker, not failed. Pure function of the (set-derived) schedule
    /// order and the claim set — so with one worker the execution order
    /// *is* the schedule order, and with N workers the claim sequence is
    /// still deterministic even though slice completion order is not
    /// (harmless: trajectories do not depend on interleaving).
    fn claimable(g: &Inner) -> Option<JobId> {
        g.queue
            .runnable()
            .into_iter()
            .find(|id| !g.running.contains(id) && !g.failed.contains(id))
    }

    /// One worker: claim → slice → commit, until the mode says stop.
    pub fn worker_loop(&self, mode: RunMode) {
        loop {
            // Claim under the lock.
            let claim = {
                let mut g = self.lock();
                loop {
                    if g.stopping {
                        break None;
                    }
                    if let Some(id) = Self::claimable(&g) {
                        g.running.insert(id);
                        g.queue.jobs.get_mut(&id).unwrap().phase = JobPhase::Running;
                        break Some((id, g.queue.jobs[&id].spec.clone()));
                    }
                    if mode == RunMode::Drain && g.running.is_empty() {
                        break None; // every job done (or failed): drained
                    }
                    g = self
                        .cv
                        .wait(g)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            };
            let Some((id, spec)) = claim else {
                self.cv.notify_all();
                return;
            };

            // Slice outside the lock: this is the long part.
            let outcome = run_job_slice(&self.cfg, id, &spec);

            // Commit under the lock.
            let mut g = self.lock();
            g.running.remove(&id);
            match outcome {
                Ok(out) => {
                    let rec = g.queue.jobs.get_mut(&id).unwrap();
                    apply_outcome(rec, &out);
                    g.queue.revision += 1;
                    let persist = self.store.persist(&g.queue);
                    drop(g);
                    if let Err(e) = persist {
                        eprintln!("fleet: queue persist failed: {e}");
                    }
                }
                Err(e) => {
                    eprintln!("fleet: slice for job {id} failed: {e}");
                    g.queue.jobs.get_mut(&id).unwrap().phase = JobPhase::Queued;
                    g.failed.insert(id);
                    drop(g);
                }
            }
            self.cv.notify_all();
        }
    }

    /// Batch mode: run `cfg.workers` workers until every job is done.
    pub fn run_to_completion(&self) {
        let n = self.cfg.workers.max(1);
        std::thread::scope(|s| {
            for _ in 0..n {
                s.spawn(|| self.worker_loop(RunMode::Drain));
            }
        });
    }
}

/// Fold a slice outcome into the job's persistent record.
fn apply_outcome(rec: &mut JobRecord, out: &SliceOutcome) {
    rec.cycles_done = out.cycles_done;
    rec.ckpt_bytes = out.ckpt_bytes;
    if out.resumed {
        rec.resumes += 1;
    }
    if out.done {
        rec.phase = JobPhase::Done;
        rec.final_checksum = out.final_checksum;
        rec.violations = out.violations;
        rec.battery_samples = out.battery_samples;
    } else {
        rec.phase = JobPhase::Queued;
        rec.preemptions += 1;
    }
    for &(idx, spans, messages, bytes) in &out.phase_deltas {
        if let Some(t) = rec.phases.iter_mut().find(|t| t.phase == idx) {
            t.spans += spans;
            t.messages += messages;
            t.bytes += bytes;
        } else {
            rec.phases.push(PhaseTotals {
                phase: idx,
                spans,
                messages,
                bytes,
            });
        }
    }
}

/// Run one quantum of one job. Store-driven: progress is read from the
/// job's checkpoint store, never from the caller's bookkeeping.
fn run_job_slice(cfg: &FleetConfig, id: JobId, spec: &JobSpec) -> Result<SliceOutcome, FleetError> {
    let dir = cfg.job_dir(id);
    let keep = cfg.keep.max(1);
    let has_ckpt = has_valid_checkpoint(&dir, keep);
    let configured = |spec: &JobSpec| -> Result<_, FleetError> {
        Ok(spec
            .builder()?
            .checkpoint_dir(&dir)
            .checkpoint_keep(keep)
            .checkpoint_every(0))
    };
    let (mut sim, resumed) = if has_ckpt {
        (configured(spec)?.resume_from(&dir)?, true)
    } else {
        (configured(spec)?.build(), false)
    };

    let before = sim.cycle_count();
    let remaining = spec.cycles.saturating_sub(before);
    let slice = remaining.min(cfg.quantum.max(1));
    sim.run_cycles(slice as usize);
    let ckpt_bytes = sim.write_checkpoint()?;

    let cycles_done = sim.cycle_count();
    let done = cycles_done >= spec.cycles;
    let (final_checksum, violations, battery_samples) = if done {
        let mut v = Verifier::new(&sim);
        v.sample(&sim);
        (
            state_checksum(&sim),
            v.violations().len() as u64,
            v.samples(),
        )
    } else {
        (0, 0, 0)
    };

    let phase_deltas = sim
        .trace()
        .buf()
        .map(|buf| {
            phase_summary(buf)
                .iter()
                .map(|row| (row.phase.index() as u32, row.spans, row.messages, row.bytes))
                .collect()
        })
        .unwrap_or_default();

    Ok(SliceOutcome {
        cycles_done,
        done,
        resumed,
        ckpt_bytes,
        final_checksum,
        violations,
        battery_samples,
        phase_deltas,
    })
}

/// Does `dir` hold at least one fully-verifiable checkpoint?
fn has_valid_checkpoint(dir: &Path, keep: usize) -> bool {
    dir.is_dir() && CheckpointStore::open(dir, keep).latest_valid().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::JobPhase;

    fn spec(name: &str, cycles: u64, priority: u32) -> JobSpec {
        JobSpec {
            name: name.into(),
            n_waters: 24,
            box_edge: 14.0,
            placement_seed: 2,
            temperature_k: 300.0,
            velocity_seed: 9,
            cutoff: 6.5,
            mesh: 16,
            cycles,
            priority,
            nodes: 0,
            threads: 1,
        }
    }

    fn temp_fleet(tag: &str, quantum: u64, workers: usize) -> Fleet {
        let dir = std::env::temp_dir().join(format!(
            "anton-fleet-sched-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = FleetConfig::new(dir);
        cfg.quantum = quantum;
        cfg.workers = workers;
        Fleet::create(cfg).unwrap()
    }

    fn cleanup(f: &Fleet) {
        let _ = std::fs::remove_dir_all(&f.config().state_dir);
    }

    /// The uninterrupted reference trajectory for a spec.
    fn solo_checksum(spec: &JobSpec) -> u64 {
        let mut sim = spec.builder().unwrap().build();
        sim.run_cycles(spec.cycles as usize);
        state_checksum(&sim)
    }

    #[test]
    fn preempted_jobs_reach_the_solo_checksum() {
        let fleet = temp_fleet("preempt", 1, 1);
        let s = spec("sliced", 3, 0);
        let golden = solo_checksum(&s);
        let (id, fresh, _) = fleet.submit(s.clone()).unwrap();
        assert!(fresh);
        fleet.run_to_completion();
        let view = fleet.status(id).unwrap();
        assert_eq!(view.phase, JobPhase::Done);
        assert_eq!(view.cycles_done, 3);
        // quantum 1 over 3 cycles: two preemptions, two resumes.
        assert_eq!(view.preemptions, 2);
        assert_eq!(view.resumes, 2);
        assert_eq!(view.final_checksum, golden);
        assert_eq!(view.violations, 0);
        assert!(view.ckpt_bytes > 0);
        cleanup(&fleet);
    }

    #[test]
    fn recovery_resumes_from_job_checkpoints() {
        let dir = std::env::temp_dir().join(format!(
            "anton-fleet-sched-test-{}-recover",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let s = spec("recoverable", 4, 0);
        let golden = solo_checksum(&s);
        let id;
        {
            let mut cfg = FleetConfig::new(&dir);
            cfg.quantum = 1;
            let fleet = Fleet::create(cfg).unwrap();
            id = fleet.submit(s.clone()).unwrap().0;
            // Run exactly one slice by hand, then drop the fleet —
            // simulating a daemon that died mid-batch.
            let out = run_job_slice(fleet.config(), id, &s).unwrap();
            assert!(!out.done);
            assert_eq!(out.cycles_done, 1);
        }
        {
            let mut cfg = FleetConfig::new(&dir);
            cfg.quantum = 2;
            let fleet = Fleet::create(cfg).unwrap();
            // Reconciliation read the job store, not the stale record.
            assert_eq!(fleet.status(id).unwrap().cycles_done, 1);
            fleet.run_to_completion();
            let view = fleet.status(id).unwrap();
            assert_eq!(view.phase, JobPhase::Done);
            assert_eq!(view.final_checksum, golden);
            cleanup(&fleet);
        }
    }

    #[test]
    fn multiple_workers_drain_a_mixed_queue_deterministically() {
        let fleet = temp_fleet("mixed", 2, 3);
        let specs = [spec("aa", 2, 0), spec("bb", 3, 2), spec("cc", 1, 1)];
        let goldens: Vec<u64> = specs.iter().map(solo_checksum).collect();
        for s in &specs {
            fleet.submit(s.clone()).unwrap();
        }
        fleet.run_to_completion();
        assert!(fleet.idle());
        for (s, golden) in specs.iter().zip(&goldens) {
            let view = fleet.status(s.job_id()).unwrap();
            assert_eq!(view.phase, JobPhase::Done, "{}", s.name);
            assert_eq!(view.final_checksum, *golden, "{}", s.name);
            assert_eq!(view.violations, 0, "{}", s.name);
        }
        cleanup(&fleet);
    }
}
