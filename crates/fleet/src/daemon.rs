//! The fleet daemon: a Unix-domain-socket front end over a [`Fleet`].
//!
//! One accept loop (connections served sequentially — the protocol is
//! strict request/response and every handler is a short queue operation)
//! plus `workers` slice threads in [`RunMode::Serve`]. All threads share
//! the fleet by reference inside one `std::thread::scope`, so shutdown is
//! a plain join: a `Shutdown` request sets the stop flag, wakes the
//! workers, and the scope ends when the accept loop breaks.
//!
//! The socket is pure I/O edge: every byte that crosses it is inside a
//! checksummed frame ([`crate::wire`]), and nothing host-dependent flows
//! inward past the decoder — requests are data, and the scheduler they
//! drive is deterministic by construction.

#![cfg(unix)]

use crate::error::FleetError;
use crate::scheduler::{Fleet, FleetConfig, RunMode};
use crate::wire::{read_frame, write_frame, FrameKind, Request, Response};
use std::io::ErrorKind;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

/// Everything a daemon needs to start.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Unix socket path (kept short: the kernel caps it near 108 bytes).
    pub socket: PathBuf,
    pub fleet: FleetConfig,
}

/// Run a daemon until a `Shutdown` request arrives. Binds the socket,
/// recovers fleet state from `fleet.state_dir`, and serves.
// detlint::boundary(reason = "audited socket I/O edge: accept order only decides which checksummed request is answered first; job trajectories and queue contents are schedule-invariant")
pub fn serve(cfg: &DaemonConfig) -> Result<(), FleetError> {
    let fleet = Fleet::create(cfg.fleet.clone())?;
    // A previous daemon that was killed leaves its socket file behind;
    // binding requires the name to be free. Stale-socket removal is safe
    // because the drill/ops contract is one daemon per state dir.
    match std::fs::remove_file(&cfg.socket) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::NotFound => {}
        Err(e) => return Err(e.into()),
    }
    if let Some(parent) = cfg.socket.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let listener = UnixListener::bind(&cfg.socket)?;

    std::thread::scope(|s| {
        for _ in 0..cfg.fleet.workers.max(1) {
            s.spawn(|| fleet.worker_loop(RunMode::Serve));
        }
        for conn in listener.incoming() {
            let mut stream = match conn {
                Ok(c) => c,
                Err(_) => continue,
            };
            let shutdown = handle_connection(&fleet, &mut stream);
            if shutdown {
                fleet.stop();
                break;
            }
        }
    });
    let _ = std::fs::remove_file(&cfg.socket);
    Ok(())
}

/// Serve one connection: frames until EOF. Returns true when the peer
/// asked the daemon to shut down.
// detlint::boundary(reason = "audited socket I/O edge: request bytes are checksum-verified by the wire codec before use; responses are pure functions of queue state")
fn handle_connection(fleet: &Fleet, stream: &mut UnixStream) -> bool {
    loop {
        let payload = match read_frame(stream) {
            Ok((FrameKind::Request, payload)) => payload,
            Ok((FrameKind::Response, _)) => {
                // A peer that sends us responses is confused; drop it.
                return false;
            }
            Err(FleetError::Io(e)) if e.kind() == ErrorKind::UnexpectedEof => return false,
            Err(_) => return false,
        };
        let (resp, shutdown) = match Request::decode(&payload) {
            Ok(req) => answer(fleet, req),
            Err(e) => (error_response(&e), false),
        };
        if write_frame(stream, FrameKind::Response, &resp.encode()).is_err() {
            return shutdown;
        }
        if shutdown {
            return true;
        }
    }
}

/// Map one decoded request to its response. Pure queue-state plumbing.
fn answer(fleet: &Fleet, req: Request) -> (Response, bool) {
    match req {
        Request::Ping => {
            let (jobs, revision) = fleet.ping();
            (Response::Pong { jobs, revision }, false)
        }
        Request::Submit(spec) => match fleet.submit(spec) {
            Ok((id, fresh, position)) => (
                Response::Submitted {
                    id,
                    fresh,
                    position,
                },
                false,
            ),
            Err(e) => (error_response(&e), false),
        },
        Request::Status(id) => match fleet.status(id) {
            Ok(view) => (Response::Status(view), false),
            Err(e) => (error_response(&e), false),
        },
        Request::List => (Response::Jobs(fleet.list()), false),
        Request::Summary(id) => match fleet.summary(id) {
            Ok((status, phases)) => (Response::Summary { status, phases }, false),
            Err(e) => (error_response(&e), false),
        },
        Request::Shutdown => (Response::ShuttingDown, true),
    }
}

fn error_response(e: &FleetError) -> Response {
    Response::Error {
        kind: e.kind().to_string(),
        message: e.to_string(),
    }
}
