//! The deterministic job queue and its crash-safe persistence.
//!
//! **Determinism rule.** The schedule order is a pure function of the
//! *set* of submitted jobs: jobs sort by (priority descending, job id
//! ascending), and the job id is itself a content fingerprint of the spec
//! ([`JobSpec::job_id`]). Arrival order, wall-clock time, and daemon
//! restarts cannot influence it. Submission is idempotent: resubmitting an
//! identical spec is a no-op that returns the existing job.
//!
//! **Persistence.** The whole queue state encodes into one deterministic
//! byte string (jobs iterate in `BTreeMap` id order) and is carried as the
//! opaque state payload of an `anton-ckpt` [`Snapshot`] — so the queue
//! inherits the container's checksummed header, atomic tmp+fsync+rename
//! writes, last-K rotation, and newest-valid fallback recovery without a
//! second on-disk format. The snapshot `step` field carries the queue
//! *revision* (bumped on every mutation), `n_atoms` carries the job count,
//! and the fingerprint is a fixed schema tag.

use crate::error::FleetError;
use crate::spec::{JobId, JobSpec};
use crate::wire::{Reader, Writer};
use anton_ckpt::{CheckpointStore, Fingerprint, Snapshot};
use anton_trace::Phase;
use std::collections::BTreeMap;

/// Persisted queue-state schema version.
pub const QUEUE_STATE_VERSION: u32 = 1;

/// Rotated queue snapshots to keep on disk.
pub const QUEUE_KEEP: usize = 4;

/// Fixed schema fingerprint stamped into every queue snapshot header.
pub fn queue_fingerprint() -> u64 {
    Fingerprint::new()
        .field("fleet_queue_state", QUEUE_STATE_VERSION as u64)
        .finish()
}

/// Lifecycle of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobPhase {
    Queued,
    Running,
    Done,
}

impl JobPhase {
    pub fn tag(self) -> u8 {
        match self {
            JobPhase::Queued => 0,
            JobPhase::Running => 1,
            JobPhase::Done => 2,
        }
    }

    pub fn from_tag(tag: u8) -> Result<JobPhase, FleetError> {
        match tag {
            0 => Ok(JobPhase::Queued),
            1 => Ok(JobPhase::Running),
            2 => Ok(JobPhase::Done),
            other => Err(FleetError::BadTag {
                what: "job phase",
                got: other as u64,
            }),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
        }
    }
}

/// Integer trace totals for one engine phase of one job, accumulated
/// across every slice the job has run. Wall-clock fields from the trace
/// summary are deliberately dropped: only schedule-invariant counters
/// (spans, messages, bytes) are persisted and reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Index into [`Phase::ALL`].
    pub phase: u32,
    pub spans: u64,
    pub messages: u64,
    pub bytes: u64,
}

impl PhaseTotals {
    /// Phase name for display (falls back on an out-of-range index rather
    /// than failing: the vocabulary may grow).
    pub fn phase_name(&self) -> &'static str {
        Phase::ALL
            .get(self.phase as usize)
            .map(|p| p.name())
            .unwrap_or("unknown")
    }

    pub fn encode_into(&self, w: &mut Writer) {
        w.u32(self.phase);
        w.u64(self.spans);
        w.u64(self.messages);
        w.u64(self.bytes);
    }

    pub fn decode_from(r: &mut Reader<'_>) -> Result<PhaseTotals, FleetError> {
        Ok(PhaseTotals {
            phase: r.u32()?,
            spans: r.u64()?,
            messages: r.u64()?,
            bytes: r.u64()?,
        })
    }
}

/// The status record the daemon reports for one job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobStatusView {
    pub id: JobId,
    pub name: String,
    pub phase: JobPhase,
    pub priority: u32,
    pub cycles_total: u64,
    pub cycles_done: u64,
    /// Times the job was paused at a quantum boundary with work remaining.
    pub preemptions: u64,
    /// Times a slice restored the job from its checkpoint store.
    pub resumes: u64,
    /// Bytes of the job's most recent checkpoint file.
    pub ckpt_bytes: u64,
    /// FNV-1a over the final state bytes; 0 until the job is done.
    pub final_checksum: u64,
    /// Analysis-battery violations observed at completion.
    pub violations: u64,
    /// Analysis-battery samples taken at completion.
    pub battery_samples: u64,
}

impl JobStatusView {
    pub fn encode_into(&self, w: &mut Writer) {
        w.u64(self.id.0);
        w.str_field(&self.name);
        w.u8(self.phase.tag());
        w.u32(self.priority);
        w.u64(self.cycles_total);
        w.u64(self.cycles_done);
        w.u64(self.preemptions);
        w.u64(self.resumes);
        w.u64(self.ckpt_bytes);
        w.u64(self.final_checksum);
        w.u64(self.violations);
        w.u64(self.battery_samples);
    }

    pub fn decode_from(r: &mut Reader<'_>) -> Result<JobStatusView, FleetError> {
        Ok(JobStatusView {
            id: JobId(r.u64()?),
            name: r.str_field("job name")?,
            phase: JobPhase::from_tag(r.u8()?)?,
            priority: r.u32()?,
            cycles_total: r.u64()?,
            cycles_done: r.u64()?,
            preemptions: r.u64()?,
            resumes: r.u64()?,
            ckpt_bytes: r.u64()?,
            final_checksum: r.u64()?,
            violations: r.u64()?,
            battery_samples: r.u64()?,
        })
    }
}

/// Everything the queue persists about one job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRecord {
    pub spec: JobSpec,
    pub phase: JobPhase,
    pub cycles_done: u64,
    pub preemptions: u64,
    pub resumes: u64,
    pub ckpt_bytes: u64,
    pub final_checksum: u64,
    pub violations: u64,
    pub battery_samples: u64,
    /// One accumulator per [`Phase::ALL`] entry, in phase-index order.
    pub phases: Vec<PhaseTotals>,
}

impl JobRecord {
    pub fn new(spec: JobSpec) -> JobRecord {
        JobRecord {
            spec,
            phase: JobPhase::Queued,
            cycles_done: 0,
            preemptions: 0,
            resumes: 0,
            ckpt_bytes: 0,
            final_checksum: 0,
            violations: 0,
            battery_samples: 0,
            phases: Phase::ALL
                .iter()
                .map(|p| PhaseTotals {
                    phase: p.index() as u32,
                    spans: 0,
                    messages: 0,
                    bytes: 0,
                })
                .collect(),
        }
    }

    pub fn view(&self) -> JobStatusView {
        JobStatusView {
            id: self.spec.job_id(),
            name: self.spec.name.clone(),
            phase: self.phase,
            priority: self.spec.priority,
            cycles_total: self.spec.cycles,
            cycles_done: self.cycles_done,
            preemptions: self.preemptions,
            resumes: self.resumes,
            ckpt_bytes: self.ckpt_bytes,
            final_checksum: self.final_checksum,
            violations: self.violations,
            battery_samples: self.battery_samples,
        }
    }

    pub fn encode_into(&self, w: &mut Writer) {
        self.spec.encode_into(w);
        // A job observed mid-slice persists as Queued: after a crash the
        // slice never committed, so on recovery the job is simply runnable
        // again from its newest checkpoint.
        let phase = match self.phase {
            JobPhase::Running => JobPhase::Queued,
            p => p,
        };
        w.u8(phase.tag());
        w.u64(self.cycles_done);
        w.u64(self.preemptions);
        w.u64(self.resumes);
        w.u64(self.ckpt_bytes);
        w.u64(self.final_checksum);
        w.u64(self.violations);
        w.u64(self.battery_samples);
        w.u32(self.phases.len() as u32);
        for p in &self.phases {
            p.encode_into(w);
        }
    }

    pub fn decode_from(r: &mut Reader<'_>) -> Result<JobRecord, FleetError> {
        let spec = JobSpec::decode_from(r)?;
        let phase = JobPhase::from_tag(r.u8()?)?;
        let cycles_done = r.u64()?;
        let preemptions = r.u64()?;
        let resumes = r.u64()?;
        let ckpt_bytes = r.u64()?;
        let final_checksum = r.u64()?;
        let violations = r.u64()?;
        let battery_samples = r.u64()?;
        let n = r.u32()?;
        if n as usize > 1024 {
            return Err(FleetError::LengthMismatch {
                what: "phase accumulator list",
                expected: n as u64,
                got: 1024,
            });
        }
        let mut phases = Vec::with_capacity(n as usize);
        for _ in 0..n {
            phases.push(PhaseTotals::decode_from(r)?);
        }
        Ok(JobRecord {
            spec,
            phase,
            cycles_done,
            preemptions,
            resumes,
            ckpt_bytes,
            final_checksum,
            violations,
            battery_samples,
            phases,
        })
    }
}

/// The complete queue: every known job plus a monotonic revision counter.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueueState {
    /// Jobs keyed by content id — `BTreeMap` so iteration (and therefore
    /// the persisted encoding) is in deterministic id order.
    pub jobs: BTreeMap<JobId, JobRecord>,
    /// Bumped on every mutation; doubles as the snapshot step, so rotated
    /// queue snapshots sort by revision.
    pub revision: u64,
}

impl QueueState {
    /// Idempotent submit. Returns the id and whether the job was new.
    pub fn submit(&mut self, spec: JobSpec) -> Result<(JobId, bool), FleetError> {
        spec.validate()?;
        let id = spec.job_id();
        if self.jobs.contains_key(&id) {
            return Ok((id, false));
        }
        self.jobs.insert(id, JobRecord::new(spec));
        Ok((id, true))
    }

    /// Deterministic schedule order over *all* jobs: priority descending,
    /// then id ascending. A pure function of the submitted set.
    pub fn schedule_order(&self) -> Vec<JobId> {
        let mut ids: Vec<JobId> = self.jobs.keys().copied().collect();
        ids.sort_by_key(|id| (u32::MAX - self.jobs[id].spec.priority, *id));
        ids
    }

    /// Jobs still needing work, in schedule order.
    pub fn runnable(&self) -> Vec<JobId> {
        self.schedule_order()
            .into_iter()
            .filter(|id| self.jobs[id].phase == JobPhase::Queued)
            .collect()
    }

    /// A job's position in the schedule order.
    pub fn position(&self, id: JobId) -> Option<u64> {
        self.schedule_order()
            .iter()
            .position(|&j| j == id)
            .map(|p| p as u64)
    }

    pub fn view(&self, id: JobId) -> Result<JobStatusView, FleetError> {
        self.jobs
            .get(&id)
            .map(|r| r.view())
            .ok_or(FleetError::UnknownJob { id: id.0 })
    }

    /// Every job's status view, in schedule order.
    pub fn views(&self) -> Vec<JobStatusView> {
        self.schedule_order()
            .iter()
            .map(|id| self.jobs[id].view())
            .collect()
    }

    /// Deterministic byte encoding: version, revision, then records in
    /// ascending id order, each keyed by its id (cross-checked on decode).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(QUEUE_STATE_VERSION);
        w.u64(self.revision);
        w.u64(self.jobs.len() as u64);
        for (id, rec) in &self.jobs {
            w.u64(id.0);
            rec.encode_into(&mut w);
        }
        w.finish()
    }

    pub fn decode(bytes: &[u8]) -> Result<QueueState, FleetError> {
        let mut r = Reader::new(bytes);
        let version = r.u32()?;
        if version != QUEUE_STATE_VERSION {
            return Err(FleetError::BadVersion {
                got: version,
                expected: QUEUE_STATE_VERSION,
            });
        }
        let revision = r.u64()?;
        let n = r.u64()?;
        if n > 1_000_000 {
            return Err(FleetError::LengthMismatch {
                what: "queue job count",
                expected: n,
                got: 1_000_000,
            });
        }
        let mut jobs = BTreeMap::new();
        for _ in 0..n {
            let stored_id = r.u64()?;
            let rec = JobRecord::decode_from(&mut r)?;
            let computed = rec.spec.job_id();
            if computed.0 != stored_id {
                // The record's key must be the fingerprint of its own spec;
                // disagreement means the bytes are damaged (or forged).
                return Err(FleetError::ChecksumMismatch {
                    what: "job record id",
                    stored: stored_id,
                    computed: computed.0,
                });
            }
            jobs.insert(computed, rec);
        }
        r.expect_end("queue state")?;
        Ok(QueueState { jobs, revision })
    }

    /// Wrap the encoding in an `anton-ckpt` snapshot for persistence.
    pub fn to_snapshot(&self) -> Snapshot {
        Snapshot {
            step: self.revision,
            fingerprint: queue_fingerprint(),
            n_atoms: self.jobs.len() as u64,
            state: self.encode(),
            counters: Vec::new(),
            trace_dropped: [0, 0],
            match_ref: Vec::new(),
        }
    }

    /// Recover from a snapshot written by [`Self::to_snapshot`].
    pub fn from_snapshot(snap: &Snapshot) -> Result<QueueState, FleetError> {
        let expected = queue_fingerprint();
        if snap.fingerprint != expected {
            return Err(FleetError::ChecksumMismatch {
                what: "queue snapshot fingerprint",
                stored: snap.fingerprint,
                computed: expected,
            });
        }
        let state = QueueState::decode(&snap.state)?;
        if state.revision != snap.step {
            return Err(FleetError::ChecksumMismatch {
                what: "queue snapshot revision",
                stored: snap.step,
                computed: state.revision,
            });
        }
        Ok(state)
    }
}

/// The queue's durable home: a `CheckpointStore` holding rotated queue
/// snapshots named by revision.
pub struct QueueStore {
    store: CheckpointStore,
}

impl QueueStore {
    pub fn create(dir: impl Into<std::path::PathBuf>) -> Result<QueueStore, FleetError> {
        Ok(QueueStore {
            store: CheckpointStore::create(dir, QUEUE_KEEP)?,
        })
    }

    /// Persist the state atomically; returns the snapshot size in bytes.
    pub fn persist(&self, state: &QueueState) -> Result<u64, FleetError> {
        let receipt = self.store.write(&state.to_snapshot())?;
        Ok(receipt.bytes)
    }

    /// Newest queue snapshot that loads *and* decodes cleanly; a corrupted
    /// or wrong-schema newest file falls back to the next-newest. `None`
    /// when the directory holds no queue snapshot at all (fresh start).
    pub fn recover(&self) -> Result<Option<QueueState>, FleetError> {
        let entries = match self.store.list() {
            Ok(e) => e,
            Err(_) => return Ok(None),
        };
        for (_, path) in entries.iter().rev() {
            let Ok(snap) = anton_ckpt::load_file(path) else {
                continue;
            };
            if let Ok(state) = QueueState::from_snapshot(&snap) {
                return Ok(Some(state));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub fn sample_view() -> JobStatusView {
        JobStatusView {
            id: JobId(0x0123_4567_89ab_cdef),
            name: "waterbox-a".into(),
            phase: JobPhase::Running,
            priority: 2,
            cycles_total: 8,
            cycles_done: 3,
            preemptions: 2,
            resumes: 2,
            ckpt_bytes: 4096,
            final_checksum: 0,
            violations: 0,
            battery_samples: 0,
        }
    }

    fn spec(name: &str, priority: u32) -> JobSpec {
        JobSpec {
            name: name.into(),
            n_waters: 30,
            box_edge: 15.0,
            placement_seed: 11,
            temperature_k: 300.0,
            velocity_seed: 5,
            cutoff: 7.0,
            mesh: 16,
            cycles: 4,
            priority,
            nodes: 0,
            threads: 1,
        }
    }

    fn populated() -> QueueState {
        let mut q = QueueState::default();
        q.submit(spec("a", 1)).unwrap();
        q.submit(spec("b", 3)).unwrap();
        q.submit(spec("c", 3)).unwrap();
        q.revision = 7;
        q
    }

    #[test]
    fn submission_is_idempotent() {
        let mut q = QueueState::default();
        let (id1, fresh1) = q.submit(spec("a", 1)).unwrap();
        let (id2, fresh2) = q.submit(spec("a", 1)).unwrap();
        assert_eq!(id1, id2);
        assert!(fresh1);
        assert!(!fresh2);
        assert_eq!(q.jobs.len(), 1);
        assert!(q.submit(spec("zzz", 0)).unwrap().1);
        assert_eq!(q.jobs.len(), 2);
    }

    #[test]
    fn schedule_order_is_arrival_invariant() {
        let mut fwd = QueueState::default();
        let mut rev = QueueState::default();
        let specs = [spec("a", 1), spec("b", 3), spec("c", 3), spec("d", 0)];
        for s in &specs {
            fwd.submit(s.clone()).unwrap();
        }
        for s in specs.iter().rev() {
            rev.submit(s.clone()).unwrap();
        }
        assert_eq!(fwd.schedule_order(), rev.schedule_order());
        // Priority 3 jobs first (id-ascending among ties), then 1, then 0.
        let order = fwd.schedule_order();
        let prio: Vec<u32> = order.iter().map(|id| fwd.jobs[id].spec.priority).collect();
        assert_eq!(prio, [3, 3, 1, 0]);
        let tied: Vec<JobId> = order[..2].to_vec();
        assert!(tied[0] < tied[1]);
    }

    #[test]
    fn runnable_excludes_done_jobs() {
        let mut q = populated();
        let first = q.schedule_order()[0];
        q.jobs.get_mut(&first).unwrap().phase = JobPhase::Done;
        assert!(!q.runnable().contains(&first));
        assert_eq!(q.runnable().len(), 2);
        // ... but the full schedule order still lists it.
        assert_eq!(q.schedule_order().len(), 3);
    }

    #[test]
    fn state_roundtrips_bytewise() {
        let q = populated();
        let bytes = q.encode();
        assert_eq!(bytes, q.encode(), "encoding must be deterministic");
        let back = QueueState::decode(&bytes).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn running_jobs_persist_as_queued() {
        let mut q = populated();
        let first = q.schedule_order()[0];
        q.jobs.get_mut(&first).unwrap().phase = JobPhase::Running;
        let back = QueueState::decode(&q.encode()).unwrap();
        assert_eq!(back.jobs[&first].phase, JobPhase::Queued);
    }

    #[test]
    fn snapshot_roundtrip_and_fingerprint_guard() {
        let q = populated();
        let snap = q.to_snapshot();
        assert_eq!(snap.step, q.revision);
        assert_eq!(snap.n_atoms, 3);
        assert_eq!(QueueState::from_snapshot(&snap).unwrap(), q);
        let mut wrong = snap.clone();
        wrong.fingerprint ^= 1;
        assert_eq!(
            QueueState::from_snapshot(&wrong).unwrap_err().kind(),
            "checksum_mismatch"
        );
    }

    #[test]
    fn tampered_record_id_is_detected() {
        let q = populated();
        let mut bytes = q.encode();
        // The first record id starts right after version (4) + revision (8)
        // + count (8).
        bytes[20] ^= 0xff;
        let err = QueueState::decode(&bytes).unwrap_err();
        assert!(err.is_corruption(), "unexpected {err}");
    }

    #[test]
    fn store_persists_and_recovers_newest_valid() {
        let dir = std::env::temp_dir().join(format!(
            "anton-fleet-queue-store-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = QueueStore::create(&dir).unwrap();
        assert!(store.recover().unwrap().is_none(), "fresh dir is empty");
        let mut q = populated();
        store.persist(&q).unwrap();
        q.revision += 1;
        q.jobs.values_mut().next().unwrap().cycles_done = 2;
        store.persist(&q).unwrap();
        assert_eq!(store.recover().unwrap().unwrap(), q);
        // Corrupt the newest snapshot: recovery falls back to the previous.
        let newest = dir.join("ckpt-000000000008.ant");
        let mut b = std::fs::read(&newest).unwrap();
        let last = b.len() - 1;
        b[last] ^= 1;
        std::fs::write(&newest, &b).unwrap();
        let recovered = store.recover().unwrap().unwrap();
        assert_eq!(recovered.revision, 7);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
