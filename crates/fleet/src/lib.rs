//! # anton-fleet — a deterministic multi-job simulation service
//!
//! A daemon/client pair that runs *fleets* of simulations — ensembles of
//! independent waterbox jobs, the workload shape of the massive-sampling
//! protocols built on Anton-class machines — by time-slicing them over a
//! small worker pool with **checkpoint preemption**: a job runs for a
//! quantum of outer cycles, checkpoints, and yields. Because engine
//! resume is bitwise exact (DESIGN.md §12), every job's trajectory is
//! identical to an uninterrupted solo run *regardless of quantum, worker
//! count, schedule, or daemon crashes* — scheduling decides when cycles
//! run, never what they compute.
//!
//! Layer map (DESIGN.md §17):
//!
//! - [`spec`]: job descriptions and content-derived job ids
//! - [`wire`]: the framed, checksummed socket protocol
//! - [`queue`]: the deterministic queue and its crash-safe persistence
//!   (carried in the `anton-ckpt` container format)
//! - [`scheduler`]: quantum-of-cycles preemptive slicing over a worker
//!   pool
//! - [`daemon`] / [`client`]: the Unix-socket service front end (Unix
//!   only; everything below it is platform-neutral)
//! - [`error`]: the typed failure vocabulary

pub mod client;
pub mod daemon;
pub mod error;
pub mod queue;
pub mod scheduler;
pub mod spec;
pub mod wire;

#[cfg(unix)]
pub use client::FleetClient;
#[cfg(unix)]
pub use daemon::{serve, DaemonConfig};
pub use error::FleetError;
pub use queue::{JobPhase, JobRecord, JobStatusView, PhaseTotals, QueueState, QueueStore};
pub use scheduler::{state_checksum, Fleet, FleetConfig, RunMode};
pub use spec::{JobId, JobSpec};
pub use wire::{Reader, Request, Response, Writer};
