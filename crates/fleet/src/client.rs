//! The fleet client: typed request/response calls over the daemon socket.

#![cfg(unix)]

use crate::error::FleetError;
use crate::queue::{JobStatusView, PhaseTotals};
use crate::spec::{JobId, JobSpec};
use crate::wire::{read_frame, write_frame, FrameKind, Request, Response};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// One connection to a fleet daemon.
pub struct FleetClient {
    stream: UnixStream,
}

impl FleetClient {
    /// Connect to a daemon socket.
    // detlint::boundary(reason = "audited socket I/O edge: connection setup only; all payloads cross through the checksummed wire codec")
    pub fn connect(socket: impl AsRef<Path>) -> Result<FleetClient, FleetError> {
        Ok(FleetClient {
            stream: UnixStream::connect(socket)?,
        })
    }

    /// Connect with retries: `attempts × delay_ms` of patience while a
    /// just-spawned daemon binds its socket. Retry count is bounded and
    /// explicit — never wall-clock-dependent.
    pub fn connect_retry(
        socket: impl AsRef<Path>,
        attempts: u32,
        delay_ms: u64,
    ) -> Result<FleetClient, FleetError> {
        let socket = socket.as_ref();
        let mut last = None;
        for _ in 0..attempts.max(1) {
            match FleetClient::connect(socket) {
                Ok(c) => return Ok(c),
                Err(e) => last = Some(e),
            }
            std::thread::sleep(std::time::Duration::from_millis(delay_ms));
        }
        Err(last.unwrap_or(FleetError::UnexpectedResponse {
            wanted: "connection",
            got: "nothing",
        }))
    }

    /// One request/response exchange. Remote error responses surface as
    /// [`FleetError::Remote`].
    pub fn request(&mut self, req: &Request) -> Result<Response, FleetError> {
        write_frame(&mut self.stream, FrameKind::Request, &req.encode())?;
        let (kind, payload) = read_frame(&mut self.stream)?;
        if kind != FrameKind::Response {
            return Err(FleetError::UnexpectedResponse {
                wanted: "response frame",
                got: "request frame",
            });
        }
        match Response::decode(&payload)? {
            Response::Error { kind, message } => Err(FleetError::Remote { kind, message }),
            resp => Ok(resp),
        }
    }

    /// Liveness probe: (jobs known, queue revision).
    pub fn ping(&mut self) -> Result<(u64, u64), FleetError> {
        match self.request(&Request::Ping)? {
            Response::Pong { jobs, revision } => Ok((jobs, revision)),
            other => unexpected("pong", &other),
        }
    }

    /// Submit a job; idempotent. Returns (id, freshly inserted, position).
    pub fn submit(&mut self, spec: JobSpec) -> Result<(JobId, bool, u64), FleetError> {
        match self.request(&Request::Submit(spec))? {
            Response::Submitted {
                id,
                fresh,
                position,
            } => Ok((id, fresh, position)),
            other => unexpected("submitted", &other),
        }
    }

    pub fn status(&mut self, id: JobId) -> Result<JobStatusView, FleetError> {
        match self.request(&Request::Status(id))? {
            Response::Status(view) => Ok(view),
            other => unexpected("status", &other),
        }
    }

    /// Every job, in deterministic schedule order.
    pub fn list(&mut self) -> Result<Vec<JobStatusView>, FleetError> {
        match self.request(&Request::List)? {
            Response::Jobs(views) => Ok(views),
            other => unexpected("jobs", &other),
        }
    }

    pub fn summary(&mut self, id: JobId) -> Result<(JobStatusView, Vec<PhaseTotals>), FleetError> {
        match self.request(&Request::Summary(id))? {
            Response::Summary { status, phases } => Ok((status, phases)),
            other => unexpected("summary", &other),
        }
    }

    /// Ask the daemon to stop once current slices finish.
    pub fn shutdown(&mut self) -> Result<(), FleetError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => unexpected("shutting_down", &other),
        }
    }

    /// Poll `list` until every job is done or `max_polls` is exhausted.
    /// Returns the final listing. Polling cadence is slice-progress bound,
    /// not wall-clock bound: the bound is an explicit attempt count.
    pub fn wait_until_done(
        &mut self,
        max_polls: u64,
        delay_ms: u64,
    ) -> Result<Vec<JobStatusView>, FleetError> {
        let mut views = self.list()?;
        for _ in 0..max_polls {
            if !views.is_empty()
                && views
                    .iter()
                    .all(|v| v.phase == crate::queue::JobPhase::Done)
            {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(delay_ms));
            views = self.list()?;
        }
        Ok(views)
    }
}

fn unexpected<T>(wanted: &'static str, got: &Response) -> Result<T, FleetError> {
    Err(FleetError::UnexpectedResponse {
        wanted,
        got: got.name(),
    })
}
