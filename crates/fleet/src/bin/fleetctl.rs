//! `fleetctl` — the anton-fleet command-line client.
//!
//! ```text
//! fleetctl --socket PATH ping
//! fleetctl --socket PATH submit NAME WATERS BOX SEED TEMP VSEED CUTOFF MESH CYCLES [PRIORITY]
//! fleetctl --socket PATH status JOBID
//! fleetctl --socket PATH list
//! fleetctl --socket PATH summary JOBID
//! fleetctl --socket PATH shutdown
//! ```

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}

#[cfg(unix)]
fn run(args: Vec<String>) -> i32 {
    use anton_fleet::{FleetClient, JobId, JobSpec};

    let mut socket = None;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = it.next(),
            "--help" | "-h" => {
                usage();
                return 0;
            }
            _ => rest.push(arg),
        }
    }
    let Some(socket) = socket else {
        eprintln!("fleetctl: --socket is required");
        return 2;
    };
    let Some(verb) = rest.first().cloned() else {
        usage();
        return 2;
    };

    let mut client = match FleetClient::connect(&socket) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fleetctl: connect {socket}: {e}");
            return 1;
        }
    };

    let outcome = match verb.as_str() {
        "ping" => client.ping().map(|(jobs, revision)| {
            println!("pong: {jobs} jobs, queue revision {revision}");
        }),
        "submit" => {
            if rest.len() < 10 {
                usage();
                return 2;
            }
            let num = |i: usize| -> u64 { rest[i].parse().expect("numeric argument") };
            let fnum = |i: usize| -> f64 { rest[i].parse().expect("numeric argument") };
            let spec = JobSpec {
                name: rest[1].clone(),
                n_waters: num(2) as u32,
                box_edge: fnum(3),
                placement_seed: num(4),
                temperature_k: fnum(5),
                velocity_seed: num(6),
                cutoff: fnum(7),
                mesh: num(8) as u32,
                cycles: num(9),
                priority: rest.get(10).map(|s| s.parse().unwrap_or(0)).unwrap_or(0),
                nodes: 0,
                threads: 1,
            };
            client.submit(spec).map(|(id, fresh, position)| {
                let tag = if fresh { "submitted" } else { "already queued" };
                println!("{tag}: job {id} at schedule position {position}");
            })
        }
        "status" | "summary" => {
            let Some(id) = rest.get(1).and_then(|s| JobId::parse(s)) else {
                eprintln!("fleetctl: {verb} needs a 16-hex-digit job id");
                return 2;
            };
            if verb == "status" {
                client.status(id).map(|v| print_view(&v))
            } else {
                client.summary(id).map(|(v, phases)| {
                    print_view(&v);
                    for p in &phases {
                        if p.spans > 0 {
                            println!(
                                "  {:<16} spans {:<8} messages {:<8} bytes {}",
                                p.phase_name(),
                                p.spans,
                                p.messages,
                                p.bytes
                            );
                        }
                    }
                })
            }
        }
        "list" => client.list().map(|views| {
            for v in &views {
                print_view(v);
            }
            if views.is_empty() {
                println!("no jobs");
            }
        }),
        "shutdown" => client.shutdown().map(|()| {
            println!("daemon shutting down");
        }),
        other => {
            eprintln!("fleetctl: unknown verb {other}");
            usage();
            return 2;
        }
    };
    match outcome {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("fleetctl: {e}");
            1
        }
    }
}

#[cfg(unix)]
fn print_view(v: &anton_fleet::JobStatusView) {
    println!(
        "{} {:<20} {:<8} prio {} cycles {}/{} preempt {} resume {} ckpt {}B checksum {:016x} violations {}",
        v.id,
        v.name,
        v.phase.name(),
        v.priority,
        v.cycles_done,
        v.cycles_total,
        v.preemptions,
        v.resumes,
        v.ckpt_bytes,
        v.final_checksum,
        v.violations
    );
}

#[cfg(unix)]
fn usage() {
    println!(
        "usage: fleetctl --socket PATH <verb>\n\
         verbs:\n\
           ping\n\
           submit NAME WATERS BOX SEED TEMP VSEED CUTOFF MESH CYCLES [PRIORITY]\n\
           status JOBID\n\
           list\n\
           summary JOBID\n\
           shutdown"
    );
}

#[cfg(not(unix))]
fn run(_args: Vec<String>) -> i32 {
    eprintln!("fleetctl: unix domain sockets are unavailable on this platform");
    2
}
