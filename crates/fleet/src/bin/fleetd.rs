//! `fleetd` — the anton-fleet daemon.
//!
//! ```text
//! fleetd --socket PATH --state DIR [--quantum N] [--workers N] [--keep N]
//! ```
//!
//! Binds the Unix socket, recovers any persisted queue state from the
//! state directory, and serves until a `shutdown` request arrives.

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}

#[cfg(unix)]
fn run(args: Vec<String>) -> i32 {
    use anton_fleet::{daemon, DaemonConfig, FleetConfig};

    let mut socket = None;
    let mut state = None;
    let mut quantum = 4u64;
    let mut workers = 1usize;
    let mut keep = 3usize;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--socket" => socket = Some(value("--socket")),
            "--state" => state = Some(value("--state")),
            "--quantum" => quantum = parse(&value("--quantum")),
            "--workers" => workers = parse(&value("--workers")),
            "--keep" => keep = parse(&value("--keep")),
            "--help" | "-h" => {
                println!(
                    "usage: fleetd --socket PATH --state DIR [--quantum N] [--workers N] [--keep N]"
                );
                return 0;
            }
            other => fail(&format!("unknown argument {other}")),
        }
    }
    let Some(socket) = socket else {
        fail("--socket is required")
    };
    let Some(state) = state else {
        fail("--state is required")
    };

    let mut fleet = FleetConfig::new(state);
    fleet.quantum = quantum.max(1);
    fleet.workers = workers.max(1);
    fleet.keep = keep.max(1);
    let cfg = DaemonConfig {
        socket: socket.into(),
        fleet,
    };
    eprintln!(
        "fleetd: serving on {} (state {}, quantum {}, workers {})",
        cfg.socket.display(),
        cfg.fleet.state_dir.display(),
        cfg.fleet.quantum,
        cfg.fleet.workers
    );
    match daemon::serve(&cfg) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("fleetd: {e}");
            1
        }
    }
}

#[cfg(unix)]
fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| fail(&format!("bad numeric value {s}")))
}

#[cfg(unix)]
fn fail(msg: &str) -> ! {
    eprintln!("fleetd: {msg}");
    std::process::exit(2);
}

#[cfg(not(unix))]
fn run(_args: Vec<String>) -> i32 {
    eprintln!("fleetd: unix domain sockets are unavailable on this platform");
    2
}
