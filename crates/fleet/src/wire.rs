//! The fleet wire protocol: length-prefixed, versioned, FNV-checksummed
//! frames over a byte stream, and the request/response message vocabulary
//! inside them.
//!
//! Frame layout (all integers little-endian, mirroring the `anton-ckpt`
//! container discipline — every bit of a frame is covered by the magic
//! check or one of two FNV-1a checksums):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"ANTFLET1"
//! 8       4     protocol version (1)
//! 12      4     frame kind (1 = request, 2 = response)
//! 16      8     payload_len
//! 24      8     payload FNV-1a
//! 32      8     header FNV-1a (over bytes 0..32)
//! 40      ...   payload
//! ```
//!
//! Verification order on decode: length of the fixed header, magic, header
//! checksum, version, kind, payload cap, payload length, payload checksum
//! — no length field is trusted before the checksum guarding it has been
//! verified, and the payload cap is enforced before any allocation so a
//! damaged length can never balloon a peer.

use crate::error::FleetError;
use crate::queue::{JobStatusView, PhaseTotals};
use crate::spec::{JobId, JobSpec};
use anton_ckpt::fnv1a;
use std::io::{Read, Write};

/// Frame magic: `ANTFLET1`.
pub const MAGIC: [u8; 8] = *b"ANTFLET1";
/// Wire protocol version.
pub const VERSION: u32 = 1;
/// Fixed frame header length in bytes.
pub const FRAME_HEADER_LEN: usize = 40;
/// Maximum payload a frame may declare (refused before allocation).
pub const MAX_FRAME_PAYLOAD: u64 = 1 << 22;

/// What a frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    Request,
    Response,
}

impl FrameKind {
    fn tag(self) -> u32 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Response => 2,
        }
    }

    fn from_tag(tag: u32) -> Result<FrameKind, FleetError> {
        match tag {
            1 => Ok(FrameKind::Request),
            2 => Ok(FrameKind::Response),
            other => Err(FleetError::BadTag {
                what: "frame kind",
                got: other as u64,
            }),
        }
    }
}

/// Append-only little-endian encoder shared by every fleet codec.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed UTF-8 string field.
    pub fn str_field(&mut self, s: &str) {
        self.u32(s.len() as u32);
        // detlint::allow(D8, reason = "the field is &str, so these bytes are UTF-8 — identical on every architecture; no integer layout is involved")
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-tracking little-endian decoder with typed errors.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, len: usize, what: &'static str) -> Result<&'a [u8], FleetError> {
        let end = self
            .pos
            .checked_add(len)
            .ok_or(FleetError::LengthMismatch {
                what,
                expected: len as u64,
                got: self.bytes.len() as u64,
            })?;
        if end > self.bytes.len() {
            return Err(FleetError::TooShort {
                needed: end as u64,
                got: self.bytes.len() as u64,
            });
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, FleetError> {
        Ok(self.take(1, "u8 field")?[0])
    }

    pub fn u32(&mut self) -> Result<u32, FleetError> {
        Ok(u32::from_le_bytes(
            self.take(4, "u32 field")?.try_into().unwrap(),
        ))
    }

    pub fn u64(&mut self) -> Result<u64, FleetError> {
        Ok(u64::from_le_bytes(
            self.take(8, "u64 field")?.try_into().unwrap(),
        ))
    }

    /// Length-prefixed UTF-8 string field (capped at 4096 bytes).
    pub fn str_field(&mut self, what: &'static str) -> Result<String, FleetError> {
        let len = self.u32()? as usize;
        if len > 4096 {
            return Err(FleetError::LengthMismatch {
                what,
                expected: len as u64,
                got: 4096,
            });
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FleetError::BadTag {
            what: "utf-8 string field",
            got: 0,
        })
    }

    /// Require that every byte has been consumed (trailing garbage in a
    /// decoded message is corruption, not slack).
    pub fn expect_end(&self, what: &'static str) -> Result<(), FleetError> {
        if self.pos != self.bytes.len() {
            return Err(FleetError::LengthMismatch {
                what,
                expected: self.pos as u64,
                got: self.bytes.len() as u64,
            });
        }
        Ok(())
    }
}

/// Encode one complete frame around `payload`.
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut head = Vec::with_capacity(FRAME_HEADER_LEN);
    head.extend_from_slice(&MAGIC);
    head.extend_from_slice(&VERSION.to_le_bytes());
    head.extend_from_slice(&kind.tag().to_le_bytes());
    head.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    head.extend_from_slice(&fnv1a(payload).to_le_bytes());
    let header_fnv = fnv1a(&head);
    head.extend_from_slice(&header_fnv.to_le_bytes());
    head.extend_from_slice(payload);
    head
}

/// Decode and fully verify a frame from an in-memory byte string. The
/// image must contain exactly one frame (the stream reader below handles
/// framing; this strict form is what the property corpus attacks).
pub fn decode_frame(bytes: &[u8]) -> Result<(FrameKind, &[u8]), FleetError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(FleetError::TooShort {
            needed: FRAME_HEADER_LEN as u64,
            got: bytes.len() as u64,
        });
    }
    let (kind, payload_len) = verify_header(bytes[..FRAME_HEADER_LEN].try_into().unwrap())?;
    let body = &bytes[FRAME_HEADER_LEN..];
    if (body.len() as u64) < payload_len {
        return Err(FleetError::Truncated {
            expected: payload_len,
            got: body.len() as u64,
        });
    }
    if body.len() as u64 > payload_len {
        return Err(FleetError::LengthMismatch {
            what: "trailing bytes after frame payload",
            expected: payload_len,
            got: body.len() as u64,
        });
    }
    verify_payload(bytes[..FRAME_HEADER_LEN].try_into().unwrap(), body)?;
    Ok((kind, body))
}

/// Verify the fixed header alone; returns (kind, payload_len).
fn verify_header(head: &[u8; FRAME_HEADER_LEN]) -> Result<(FrameKind, u64), FleetError> {
    if head[..8] != MAGIC {
        return Err(FleetError::BadMagic);
    }
    let stored_header_fnv = u64::from_le_bytes(head[32..40].try_into().unwrap());
    let computed = fnv1a(&head[..32]);
    if computed != stored_header_fnv {
        return Err(FleetError::ChecksumMismatch {
            what: "frame header",
            stored: stored_header_fnv,
            computed,
        });
    }
    let version = u32::from_le_bytes(head[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(FleetError::BadVersion {
            got: version,
            expected: VERSION,
        });
    }
    let kind = FrameKind::from_tag(u32::from_le_bytes(head[12..16].try_into().unwrap()))?;
    let payload_len = u64::from_le_bytes(head[16..24].try_into().unwrap());
    if payload_len > MAX_FRAME_PAYLOAD {
        return Err(FleetError::FrameTooLarge {
            len: payload_len,
            max: MAX_FRAME_PAYLOAD,
        });
    }
    Ok((kind, payload_len))
}

fn verify_payload(head: &[u8; FRAME_HEADER_LEN], payload: &[u8]) -> Result<(), FleetError> {
    let stored = u64::from_le_bytes(head[24..32].try_into().unwrap());
    let computed = fnv1a(payload);
    if computed != stored {
        return Err(FleetError::ChecksumMismatch {
            what: "frame payload",
            stored,
            computed,
        });
    }
    Ok(())
}

/// Read exactly one verified frame from a stream.
// detlint::boundary(reason = "audited socket I/O edge: bytes enter the daemon only through this verified decode; nothing host-dependent flows past the checksum checks")
pub fn read_frame(r: &mut impl Read) -> Result<(FrameKind, Vec<u8>), FleetError> {
    let mut head = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut head)?;
    let (kind, payload_len) = verify_header(&head)?;
    let mut payload = vec![0u8; payload_len as usize];
    r.read_exact(&mut payload)?;
    verify_payload(&head, &payload)?;
    Ok((kind, payload))
}

/// Write one frame to a stream and flush it.
// detlint::boundary(reason = "audited socket I/O edge: the encoded frame is a pure function of the message; the stream only carries it")
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), FleetError> {
    w.write_all(&encode_frame(kind, payload))?;
    w.flush()?;
    Ok(())
}

/// Client → daemon messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness + queue headline numbers.
    Ping,
    /// Enter a job into the queue (idempotent: the id is content-derived).
    Submit(JobSpec),
    /// One job's status record.
    Status(JobId),
    /// Every job's status record, in deterministic schedule order.
    List,
    /// One job's status plus its per-phase trace totals.
    Summary(JobId),
    /// Drain current slices and stop the daemon.
    Shutdown,
}

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::Ping => w.u32(1),
            Request::Submit(spec) => {
                w.u32(2);
                spec.encode_into(&mut w);
            }
            Request::Status(id) => {
                w.u32(3);
                w.u64(id.0);
            }
            Request::List => w.u32(4),
            Request::Summary(id) => {
                w.u32(5);
                w.u64(id.0);
            }
            Request::Shutdown => w.u32(6),
        }
        w.finish()
    }

    pub fn decode(bytes: &[u8]) -> Result<Request, FleetError> {
        let mut r = Reader::new(bytes);
        let req = match r.u32()? {
            1 => Request::Ping,
            2 => Request::Submit(JobSpec::decode_from(&mut r)?),
            3 => Request::Status(JobId(r.u64()?)),
            4 => Request::List,
            5 => Request::Summary(JobId(r.u64()?)),
            6 => Request::Shutdown,
            other => {
                return Err(FleetError::BadTag {
                    what: "request tag",
                    got: other as u64,
                })
            }
        };
        r.expect_end("request message")?;
        Ok(req)
    }
}

/// Daemon → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Liveness: total jobs known and the persisted queue revision.
    Pong {
        jobs: u64,
        revision: u64,
    },
    /// Submission outcome: `fresh` is false when the identical job was
    /// already known (idempotent resubmit), `position` is the job's place
    /// in the deterministic schedule order at answer time.
    Submitted {
        id: JobId,
        fresh: bool,
        position: u64,
    },
    Status(JobStatusView),
    Jobs(Vec<JobStatusView>),
    Summary {
        status: JobStatusView,
        phases: Vec<PhaseTotals>,
    },
    /// Typed failure relayed over the wire.
    Error {
        kind: String,
        message: String,
    },
    ShuttingDown,
}

impl Response {
    /// Short name for `UnexpectedResponse` diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Response::Pong { .. } => "pong",
            Response::Submitted { .. } => "submitted",
            Response::Status(_) => "status",
            Response::Jobs(_) => "jobs",
            Response::Summary { .. } => "summary",
            Response::Error { .. } => "error",
            Response::ShuttingDown => "shutting_down",
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::Pong { jobs, revision } => {
                w.u32(1);
                w.u64(*jobs);
                w.u64(*revision);
            }
            Response::Submitted {
                id,
                fresh,
                position,
            } => {
                w.u32(2);
                w.u64(id.0);
                w.u8(*fresh as u8);
                w.u64(*position);
            }
            Response::Status(view) => {
                w.u32(3);
                view.encode_into(&mut w);
            }
            Response::Jobs(views) => {
                w.u32(4);
                w.u64(views.len() as u64);
                for v in views {
                    v.encode_into(&mut w);
                }
            }
            Response::Summary { status, phases } => {
                w.u32(5);
                status.encode_into(&mut w);
                w.u64(phases.len() as u64);
                for p in phases {
                    p.encode_into(&mut w);
                }
            }
            Response::Error { kind, message } => {
                w.u32(6);
                w.str_field(kind);
                w.str_field(message);
            }
            Response::ShuttingDown => w.u32(7),
        }
        w.finish()
    }

    pub fn decode(bytes: &[u8]) -> Result<Response, FleetError> {
        let mut r = Reader::new(bytes);
        let resp = match r.u32()? {
            1 => Response::Pong {
                jobs: r.u64()?,
                revision: r.u64()?,
            },
            2 => Response::Submitted {
                id: JobId(r.u64()?),
                fresh: r.u8()? != 0,
                position: r.u64()?,
            },
            3 => Response::Status(JobStatusView::decode_from(&mut r)?),
            4 => {
                let n = r.u64()?;
                if n > 100_000 {
                    return Err(FleetError::LengthMismatch {
                        what: "job list",
                        expected: n,
                        got: 100_000,
                    });
                }
                let mut views = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    views.push(JobStatusView::decode_from(&mut r)?);
                }
                Response::Jobs(views)
            }
            5 => {
                let status = JobStatusView::decode_from(&mut r)?;
                let n = r.u64()?;
                if n > 1024 {
                    return Err(FleetError::LengthMismatch {
                        what: "phase totals",
                        expected: n,
                        got: 1024,
                    });
                }
                let mut phases = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    phases.push(PhaseTotals::decode_from(&mut r)?);
                }
                Response::Summary { status, phases }
            }
            6 => Response::Error {
                kind: r.str_field("error kind")?,
                message: r.str_field("error message")?,
            },
            7 => Response::ShuttingDown,
            other => {
                return Err(FleetError::BadTag {
                    what: "response tag",
                    got: other as u64,
                })
            }
        };
        r.expect_end("response message")?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            name: "frame-test".into(),
            n_waters: 12,
            box_edge: 15.5,
            placement_seed: 1,
            temperature_k: 290.0,
            velocity_seed: 2,
            cutoff: 7.0,
            mesh: 16,
            cycles: 2,
            priority: 3,
            nodes: 8,
            threads: 2,
        }
    }

    #[test]
    fn frame_roundtrip_is_exact() {
        let payload = Request::Submit(spec()).encode();
        let frame = encode_frame(FrameKind::Request, &payload);
        let (kind, body) = decode_frame(&frame).unwrap();
        assert_eq!(kind, FrameKind::Request);
        assert_eq!(body, &payload[..]);
        assert_eq!(Request::decode(body).unwrap(), Request::Submit(spec()));
    }

    #[test]
    fn stream_reader_matches_in_memory_decoder() {
        let payload = Response::Pong {
            jobs: 3,
            revision: 9,
        }
        .encode();
        let frame = encode_frame(FrameKind::Response, &payload);
        let mut cursor = &frame[..];
        let (kind, body) = read_frame(&mut cursor).unwrap();
        assert_eq!(kind, FrameKind::Response);
        assert_eq!(body, payload);
        assert!(cursor.is_empty());
    }

    #[test]
    fn every_bit_flip_in_a_frame_is_detected() {
        let payload = Request::Summary(JobId(0xdead_beef_0123_4567)).encode();
        let frame = encode_frame(FrameKind::Request, &payload);
        for i in 0..frame.len() {
            for bit in 0..8 {
                let mut f = frame.clone();
                f[i] ^= 1 << bit;
                let err = decode_frame(&f).expect_err("flip must be detected");
                assert!(
                    err.is_corruption() || matches!(err, FleetError::BadVersion { .. }),
                    "byte {i} bit {bit}: unexpected {err}"
                );
            }
        }
    }

    #[test]
    fn truncation_and_trailing_garbage_are_detected() {
        let frame = encode_frame(FrameKind::Request, &Request::List.encode());
        for len in 0..frame.len() {
            let err = decode_frame(&frame[..len]).expect_err("truncation must fail");
            assert!(
                matches!(
                    err,
                    FleetError::TooShort { .. } | FleetError::Truncated { .. }
                ),
                "len {len}: unexpected {err}"
            );
        }
        let mut long = frame.clone();
        long.push(0);
        assert_eq!(decode_frame(&long).unwrap_err().kind(), "length_mismatch");
    }

    #[test]
    fn oversized_declared_payload_is_refused_before_allocation() {
        let mut frame = encode_frame(FrameKind::Request, &[]);
        frame[16..24].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        // Re-seal the header checksum so the length check itself is hit.
        let fnv = fnv1a(&frame[..32]);
        frame[32..40].copy_from_slice(&fnv.to_le_bytes());
        assert_eq!(decode_frame(&frame).unwrap_err().kind(), "frame_too_large");
    }

    #[test]
    fn every_request_and_response_roundtrips() {
        let view = crate::queue::tests::sample_view();
        let reqs = [
            Request::Ping,
            Request::Submit(spec()),
            Request::Status(JobId(5)),
            Request::List,
            Request::Summary(JobId(6)),
            Request::Shutdown,
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
        let resps = [
            Response::Pong {
                jobs: 1,
                revision: 2,
            },
            Response::Submitted {
                id: JobId(3),
                fresh: true,
                position: 0,
            },
            Response::Status(view.clone()),
            Response::Jobs(vec![view.clone(), view.clone()]),
            Response::Summary {
                status: view,
                phases: vec![
                    PhaseTotals {
                        phase: 0,
                        spans: 1,
                        messages: 2,
                        bytes: 3,
                    },
                    PhaseTotals {
                        phase: 4,
                        spans: 5,
                        messages: 6,
                        bytes: 7,
                    },
                ],
            },
            Response::Error {
                kind: "unknown_job".into(),
                message: "job 00ff not found".into(),
            },
            Response::ShuttingDown,
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn unknown_tags_are_typed_errors() {
        let mut w = Writer::new();
        w.u32(99);
        assert_eq!(Request::decode(&w.finish()).unwrap_err().kind(), "bad_tag");
        let mut w = Writer::new();
        w.u32(99);
        assert_eq!(Response::decode(&w.finish()).unwrap_err().kind(), "bad_tag");
    }
}
