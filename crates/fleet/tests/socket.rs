//! End-to-end daemon/client exercise over a real Unix socket: submit,
//! idempotent resubmit, poll to completion, summaries, error relay, and
//! clean shutdown — all in-process (the kill -9 variants live in the
//! `fleet_drill` bench, which needs real processes).

#![cfg(unix)]

use anton_fleet::daemon::{serve, DaemonConfig};
use anton_fleet::{FleetClient, FleetConfig, JobId, JobPhase, JobSpec};

fn spec(name: &str, cycles: u64, priority: u32) -> JobSpec {
    JobSpec {
        name: name.into(),
        n_waters: 20,
        box_edge: 13.5,
        placement_seed: 6,
        temperature_k: 295.0,
        velocity_seed: 13,
        cutoff: 6.0,
        mesh: 16,
        cycles,
        priority,
        nodes: 0,
        threads: 1,
    }
}

#[test]
fn daemon_serves_a_fleet_end_to_end() {
    let root = std::env::temp_dir().join(format!("anton-fleet-sock-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let cfg = DaemonConfig {
        socket: root.join("s"),
        fleet: {
            let mut f = FleetConfig::new(root.join("state"));
            f.quantum = 2;
            f.workers = 2;
            f
        },
    };

    let daemon_cfg = cfg.clone();
    let daemon = std::thread::spawn(move || serve(&daemon_cfg));

    let mut client = FleetClient::connect_retry(&cfg.socket, 100, 20).unwrap();
    let (jobs, _) = client.ping().unwrap();
    assert_eq!(jobs, 0);

    // Unknown ids and invalid specs surface as typed remote errors.
    let err = client.status(JobId(0xdead)).unwrap_err();
    assert_eq!(err.kind(), "remote");
    let mut bad = spec("bad", 1, 0);
    bad.cutoff = 9.0; // minimum image violation for this box
    assert_eq!(client.submit(bad).unwrap_err().kind(), "remote");

    // Submit two jobs; resubmitting the identical spec is a no-op.
    let a = spec("sock-a", 3, 2);
    let b = spec("sock-b", 2, 1);
    let (id_a, fresh_a, _) = client.submit(a.clone()).unwrap();
    let (id_b, fresh_b, _) = client.submit(b.clone()).unwrap();
    assert!(fresh_a && fresh_b);
    let (id_dup, fresh_dup, _) = client.submit(a.clone()).unwrap();
    assert_eq!(id_dup, id_a);
    assert!(!fresh_dup);
    assert_eq!(id_a, a.job_id(), "daemon agrees on the content id");

    // The listing is in deterministic schedule order: priority 2 first.
    let views = client.list().unwrap();
    assert_eq!(views.len(), 2);
    assert_eq!(views[0].id, id_a);
    assert_eq!(views[1].id, id_b);

    let views = client.wait_until_done(600, 25).unwrap();
    assert!(
        views.iter().all(|v| v.phase == JobPhase::Done),
        "jobs still unfinished: {views:?}"
    );

    // Completed jobs report solo-identical checksums and clean batteries.
    for (s, id) in [(&a, id_a), (&b, id_b)] {
        let mut sim = s.builder().unwrap().build();
        sim.run_cycles(s.cycles as usize);
        let golden = anton_fleet::state_checksum(&sim);
        let (view, phases) = client.summary(id).unwrap();
        assert_eq!(view.final_checksum, golden, "{}", s.name);
        assert_eq!(view.violations, 0, "{}", s.name);
        assert!(view.battery_samples > 0, "{}", s.name);
        // The per-phase trace totals accumulated across slices: the step
        // phase must have recorded every step of every slice.
        let steps: u64 = phases
            .iter()
            .filter(|p| p.phase == 0)
            .map(|p| p.spans)
            .sum();
        assert!(steps > 0, "{}: no step spans accumulated", s.name);
    }

    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
    assert!(!cfg.socket.exists(), "socket removed on shutdown");
    let _ = std::fs::remove_dir_all(&root);
}
