//! Preemption invariance: the fleet's checkpoint-preemptive time-slicing
//! must not change a single bit of any job's trajectory.
//!
//! For every (quantum, workers) point in the acceptance grid — quantum ∈
//! {1, 3, 7} × workers ∈ {1, 4} — every job a fleet drains must end at
//! exactly the state checksum of an uninterrupted solo run of the same
//! spec, with a clean analysis battery. A seeded random-spec sweep then
//! varies the physics knobs (box, seeds, temperature, priorities, thread
//! counts) to show the property is not an artifact of one hand-picked
//! workload.

use anton_fleet::scheduler::state_checksum;
use anton_fleet::{Fleet, FleetConfig, JobPhase, JobSpec};

fn solo_checksum(spec: &JobSpec) -> u64 {
    let mut sim = spec.builder().unwrap().build();
    sim.run_cycles(spec.cycles as usize);
    state_checksum(&sim)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("anton-fleet-preempt-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn drain(specs: &[JobSpec], quantum: u64, workers: usize, tag: &str) -> Vec<(JobSpec, u64, u64)> {
    let mut cfg = FleetConfig::new(temp_dir(tag));
    cfg.quantum = quantum;
    cfg.workers = workers;
    let fleet = Fleet::create(cfg).unwrap();
    for s in specs {
        let (_, fresh, _) = fleet.submit(s.clone()).unwrap();
        assert!(fresh, "{}: duplicate spec in test corpus", s.name);
    }
    fleet.run_to_completion();
    let out = specs
        .iter()
        .map(|s| {
            let v = fleet.status(s.job_id()).unwrap();
            assert_eq!(v.phase, JobPhase::Done, "{} did not finish", s.name);
            assert_eq!(v.cycles_done, s.cycles, "{} cycle count", s.name);
            (s.clone(), v.final_checksum, v.violations)
        })
        .collect();
    let _ = std::fs::remove_dir_all(&fleet.config().state_dir);
    out
}

fn base_spec(name: &str, cycles: u64, priority: u32) -> JobSpec {
    JobSpec {
        name: name.into(),
        n_waters: 24,
        box_edge: 14.0,
        placement_seed: 4,
        temperature_k: 300.0,
        velocity_seed: 11,
        cutoff: 6.5,
        mesh: 16,
        cycles,
        priority,
        nodes: 0,
        threads: 1,
    }
}

/// The acceptance grid: quantum {1,3,7} × workers {1,4}, two jobs with
/// different lengths and priorities, every cell bitwise-equal to solo.
#[test]
fn preemption_invariance_grid() {
    let specs = [base_spec("grid-a", 7, 1), base_spec("grid-b", 4, 3)];
    let goldens: Vec<u64> = specs.iter().map(solo_checksum).collect();
    for &quantum in &[1u64, 3, 7] {
        for &workers in &[1usize, 4] {
            let tag = format!("grid-q{quantum}-w{workers}");
            for ((spec, checksum, violations), golden) in
                drain(&specs, quantum, workers, &tag).iter().zip(&goldens)
            {
                assert_eq!(
                    checksum, golden,
                    "{}: quantum {quantum} workers {workers} diverged from solo",
                    spec.name
                );
                assert_eq!(*violations, 0, "{}: battery violations", spec.name);
            }
        }
    }
}

/// Preemption/resume counters are a pure function of (cycles, quantum) —
/// never of the worker count or interleaving.
#[test]
fn slice_counters_are_schedule_invariant() {
    let specs = [base_spec("count-a", 5, 0), base_spec("count-b", 3, 2)];
    for &workers in &[1usize, 4] {
        let quantum = 2u64;
        let mut cfg = FleetConfig::new(temp_dir(&format!("count-w{workers}")));
        cfg.quantum = quantum;
        cfg.workers = workers;
        let fleet = Fleet::create(cfg).unwrap();
        for s in &specs {
            fleet.submit(s.clone()).unwrap();
        }
        fleet.run_to_completion();
        for s in &specs {
            let v = fleet.status(s.job_id()).unwrap();
            let slices = s.cycles.div_ceil(quantum);
            assert_eq!(v.preemptions, slices - 1, "{} workers={workers}", s.name);
            assert_eq!(v.resumes, slices - 1, "{} workers={workers}", s.name);
        }
        let _ = std::fs::remove_dir_all(&fleet.config().state_dir);
    }
}

/// SplitMix64: the workspace-standard deterministic test stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeded property sweep: random small specs (varying seeds, box sizes,
/// temperatures, priorities, thread counts), random quantum, two workers —
/// every draw must match its solo run bit-for-bit.
#[test]
fn preemption_invariance_random_specs() {
    let mut rng = 0x0005_eedf_1ee7_u64;
    for round in 0..3u32 {
        let specs: Vec<JobSpec> = (0..2)
            .map(|i| {
                let r = splitmix(&mut rng);
                JobSpec {
                    name: format!("rand-{round}-{i}"),
                    n_waters: 16 + (r % 16) as u32,
                    box_edge: 13.5 + (r >> 8 & 3) as f64 * 0.5,
                    placement_seed: splitmix(&mut rng),
                    temperature_k: 280.0 + (r >> 16 & 63) as f64,
                    velocity_seed: splitmix(&mut rng),
                    cutoff: 6.0,
                    mesh: 16,
                    cycles: 2 + (r >> 24 & 3),
                    priority: (r >> 32 & 7) as u32,
                    nodes: 0,
                    threads: 1 + (r >> 40 & 1) as u32,
                }
            })
            .collect();
        let quantum = 1 + splitmix(&mut rng) % 3;
        let goldens: Vec<u64> = specs.iter().map(solo_checksum).collect();
        let tag = format!("rand-{round}");
        for ((spec, checksum, violations), golden) in
            drain(&specs, quantum, 2, &tag).iter().zip(&goldens)
        {
            assert_eq!(
                checksum, golden,
                "{}: random spec diverged from solo (quantum {quantum})",
                spec.name
            );
            assert_eq!(*violations, 0, "{}: battery violations", spec.name);
        }
    }
}
