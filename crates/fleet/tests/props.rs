//! Property tests for the fleet wire protocol and the persisted queue
//! state, mirroring `crates/ckpt/tests/props.rs`: random round-trips,
//! single-bit-flip corpora, and truncation sweeps. Every flip anywhere in
//! an encoded frame or queue snapshot must surface as a typed error —
//! the guarantee `fleet_drill` later exercises against a live daemon and
//! real queue files.

use anton_fleet::queue::{JobPhase, JobRecord, PhaseTotals, QueueState};
use anton_fleet::wire::{decode_frame, encode_frame, FrameKind, Request, Response};
use anton_fleet::{FleetError, JobSpec};
use proptest::prelude::*;

/// A valid-by-construction spec from a handful of sampled knobs. Floats
/// are derived from integer strategies so every generated spec passes
/// validation (and the codec still sees varied bit patterns).
fn spec(name_salt: u64, n_waters: u32, seeds: u64, cycles: u64, priority: u32) -> JobSpec {
    let n_waters = 1 + (n_waters % 60);
    // Box grows with the water count so the density guard always passes.
    let box_edge = 14.0 + (n_waters as f64) * 0.1 + (name_salt % 7) as f64 * 0.25;
    JobSpec {
        name: format!("prop-{name_salt:x}"),
        n_waters,
        box_edge,
        placement_seed: seeds,
        temperature_k: 280.0 + (seeds % 60) as f64,
        velocity_seed: seeds.rotate_left(17),
        cutoff: 6.0 + (seeds % 3) as f64 * 0.5,
        mesh: 16,
        cycles: 1 + cycles % 50,
        priority: priority % 8,
        nodes: seeds.is_multiple_of(3) as u32 * 8,
        threads: 1 + (seeds % 4) as u32,
    }
}

/// A populated queue from sampled job knobs plus progress counters.
fn queue(
    salts: &[u64],
    cycles_done: u64,
    preemptions: u64,
    ckpt_bytes: u64,
    revision: u64,
) -> QueueState {
    let mut q = QueueState::default();
    for (i, &salt) in salts.iter().enumerate() {
        let s = spec(salt, (salt >> 8) as u32, salt, salt >> 3, i as u32);
        q.submit(s).unwrap();
    }
    // Decorate the records with nontrivial progress so the codec sees the
    // full shape, not just freshly-submitted zeros.
    let phases: Vec<JobPhase> = vec![JobPhase::Queued, JobPhase::Done];
    for (i, rec) in q.jobs.values_mut().enumerate() {
        rec.phase = phases[i % phases.len()];
        rec.cycles_done = cycles_done.min(rec.spec.cycles);
        rec.preemptions = preemptions;
        rec.resumes = preemptions;
        rec.ckpt_bytes = ckpt_bytes;
        rec.final_checksum = ckpt_bytes.wrapping_mul(0x9e3779b97f4a7c15);
        rec.violations = 0;
        rec.battery_samples = 1;
        for (j, t) in rec.phases.iter_mut().enumerate() {
            t.spans = cycles_done.wrapping_add(j as u64);
            t.messages = preemptions.wrapping_mul(j as u64);
            t.bytes = ckpt_bytes.wrapping_add(j as u64 * 64);
        }
    }
    q.revision = revision;
    q
}

proptest! {
    /// Request frames round-trip bit-exactly through encode/decode.
    #[test]
    fn request_frame_roundtrip(
        salt in 0u64..u64::MAX,
        n_waters in 0u32..u32::MAX,
        seeds in 0u64..u64::MAX,
        cycles in 0u64..u64::MAX,
        tag in 0u32..6u32,
    ) {
        let req = match tag {
            0 => Request::Ping,
            1 => Request::Submit(spec(salt, n_waters, seeds, cycles, tag)),
            2 => Request::Status(anton_fleet::JobId(salt)),
            3 => Request::List,
            4 => Request::Summary(anton_fleet::JobId(seeds)),
            _ => Request::Shutdown,
        };
        let frame = encode_frame(FrameKind::Request, &req.encode());
        // Frame encoding is deterministic.
        prop_assert_eq!(&frame, &encode_frame(FrameKind::Request, &req.encode()));
        let (kind, payload) = decode_frame(&frame).unwrap();
        prop_assert_eq!(kind, FrameKind::Request);
        prop_assert_eq!(Request::decode(payload).unwrap(), req);
    }

    /// Response frames round-trip bit-exactly, including job listings.
    #[test]
    fn response_frame_roundtrip(
        salts in proptest::collection::vec(0u64..u64::MAX, 1..6),
        cycles_done in 0u64..1000u64,
        preemptions in 0u64..100u64,
        ckpt_bytes in 0u64..u64::MAX,
        tag in 0u32..4u32,
    ) {
        let q = queue(&salts, cycles_done, preemptions, ckpt_bytes, 3);
        let views = q.views();
        let resp = match tag {
            0 => Response::Pong { jobs: salts.len() as u64, revision: cycles_done },
            1 => Response::Jobs(views),
            2 => Response::Summary {
                status: views[0].clone(),
                phases: q.jobs.values().next().unwrap().phases.clone(),
            },
            _ => Response::Error {
                kind: "spec_invalid".into(),
                message: format!("case {cycles_done}"),
            },
        };
        let frame = encode_frame(FrameKind::Response, &resp.encode());
        let (kind, payload) = decode_frame(&frame).unwrap();
        prop_assert_eq!(kind, FrameKind::Response);
        prop_assert_eq!(Response::decode(payload).unwrap(), resp);
    }

    /// Single-bit-flip corpus over complete frames: every flip is caught
    /// by the magic check, a checksum, or the version gate.
    #[test]
    fn every_frame_bit_flip_is_detected(
        salt in 0u64..u64::MAX,
        n_waters in 0u32..u32::MAX,
        seeds in 0u64..u64::MAX,
        flip_pos in 0usize..usize::MAX,
        flip_bit in 0u32..8u32,
    ) {
        let req = Request::Submit(spec(salt, n_waters, seeds, seeds >> 7, 1));
        let frame = encode_frame(FrameKind::Request, &req.encode());
        let pos = flip_pos % frame.len();
        let mut flipped = frame.clone();
        flipped[pos] ^= 1u8 << flip_bit;
        let err = decode_frame(&flipped).expect_err("bit flip must be detected");
        prop_assert!(
            err.is_corruption() || matches!(err, FleetError::BadVersion { .. }),
            "byte {} bit {}: unexpected error {}", pos, flip_bit, err
        );
    }

    /// Truncating a frame at any length is detected.
    #[test]
    fn every_frame_truncation_is_detected(
        salts in proptest::collection::vec(0u64..u64::MAX, 1..4),
        cut in 0usize..usize::MAX,
    ) {
        let q = queue(&salts, 5, 2, 4096, 9);
        let resp = Response::Jobs(q.views());
        let frame = encode_frame(FrameKind::Response, &resp.encode());
        let len = cut % frame.len();
        let err = decode_frame(&frame[..len]).expect_err("truncation must be detected");
        prop_assert!(
            matches!(err, FleetError::TooShort { .. } | FleetError::Truncated { .. }),
            "cut to {}: unexpected error {}", len, err
        );
    }

    /// Queue-state encoding round-trips exactly and deterministically for
    /// arbitrary job sets and progress counters.
    #[test]
    fn queue_state_roundtrip(
        salts in proptest::collection::vec(0u64..u64::MAX, 0..8),
        cycles_done in 0u64..1000u64,
        preemptions in 0u64..100u64,
        ckpt_bytes in 0u64..u64::MAX,
        revision in 0u64..u64::MAX,
    ) {
        let q = queue(&salts, cycles_done, preemptions, ckpt_bytes, revision);
        let bytes = q.encode();
        prop_assert_eq!(&bytes, &q.encode(), "encoding must be deterministic");
        let mut expect = q.clone();
        // Running never persists (it re-queues); queue() never sets it, so
        // the decode must be the exact identity here.
        for rec in expect.jobs.values_mut() {
            if rec.phase == JobPhase::Running {
                rec.phase = JobPhase::Queued;
            }
        }
        prop_assert_eq!(QueueState::decode(&bytes).unwrap(), expect);
    }

    /// Single-bit-flip corpus over the *persisted* queue snapshot (the
    /// full ckpt container image): every flip is detected on the
    /// load-and-decode path used by crash recovery.
    #[test]
    fn every_queue_snapshot_bit_flip_is_detected(
        salts in proptest::collection::vec(0u64..u64::MAX, 1..5),
        cycles_done in 0u64..1000u64,
        flip_pos in 0usize..usize::MAX,
        flip_bit in 0u32..8u32,
    ) {
        let q = queue(&salts, cycles_done, 3, 2048, 17);
        let image = q.to_snapshot().encode();
        let pos = flip_pos % image.len();
        let mut flipped = image.clone();
        flipped[pos] ^= 1u8 << flip_bit;
        let outcome = anton_ckpt::Snapshot::decode(&flipped)
            .map_err(FleetError::from)
            .and_then(|snap| QueueState::from_snapshot(&snap));
        let err = outcome.expect_err("bit flip must be detected");
        prop_assert!(
            err.is_corruption()
                || matches!(err, FleetError::BadVersion { .. })
                || matches!(&err, FleetError::Ckpt(e) if !e.is_corruption()),
            "byte {} bit {}: unexpected error {}", pos, flip_bit, err
        );
    }
}

/// Exhaustive (not sampled) single-bit-flip sweep over one representative
/// queue snapshot image — the exact file format crash recovery reads.
#[test]
fn exhaustive_bit_flips_on_representative_queue_snapshot() {
    let q = queue(&[1, 2, 3], 4, 2, 4096, 21);
    let image = q.to_snapshot().encode();
    for i in 0..image.len() {
        for bit in 0..8 {
            let mut f = image.clone();
            f[i] ^= 1 << bit;
            let ok = anton_ckpt::Snapshot::decode(&f)
                .map_err(FleetError::from)
                .and_then(|snap| QueueState::from_snapshot(&snap))
                .is_ok();
            assert!(!ok, "undetected bit flip at byte {i} bit {bit}");
        }
    }
}

/// The decoded record set drives scheduling, so decode must also preserve
/// the schedule order exactly.
#[test]
fn decode_preserves_schedule_order() {
    let q = queue(&[9, 8, 7, 6, 5], 2, 1, 1024, 40);
    let back = QueueState::decode(&q.encode()).unwrap();
    assert_eq!(back.schedule_order(), q.schedule_order());
    assert_eq!(back.views(), q.views());
}

/// Phase accumulators survive the round trip in phase-index order.
#[test]
fn phase_totals_roundtrip_in_order() {
    let mut q = queue(&[11], 3, 1, 512, 2);
    let rec = q.jobs.values_mut().next().unwrap();
    rec.phases = vec![
        PhaseTotals {
            phase: 0,
            spans: 10,
            messages: 0,
            bytes: 0,
        },
        PhaseTotals {
            phase: 3,
            spans: 7,
            messages: 2,
            bytes: 99,
        },
    ];
    let back = QueueState::decode(&q.encode()).unwrap();
    let rec = back.jobs.values().next().unwrap();
    assert_eq!(rec.phases.len(), 2);
    assert_eq!(rec.phases[1].phase, 3);
    assert_eq!(rec.phases[1].bytes, 99);
    // JobRecord construction pre-sizes one accumulator per engine phase.
    let fresh = JobRecord::new(rec.spec.clone());
    assert_eq!(fresh.phases.len(), anton_trace::Phase::ALL.len());
}
